//! Protocol robustness: malformed, truncated, oversized and hostile
//! frames must yield **typed errors** and never panic or kill the server;
//! well-formed values must round-trip the codec bit-exactly (proptest
//! over generated requests/responses — byte equality of re-encoding, the
//! codec being deterministic).

use dds_core::engine::EngineError;
use dds_core::framework::{Dataset, Interval, LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_core::telemetry::{bucket_bounds, bucket_index, HistogramSnapshot, QueryTrace, BUCKETS};
use dds_geom::Rect;
use dds_server::protocol::{
    opcode, MetricsReport, Request, Response, ServerErrorKind, ServerStats,
};
use dds_server::wire::{
    read_frame, write_frame, FrameReadError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use dds_server::{ClientConfig, ClientError, DdsClient, DdsServer, ServerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

/// A random finite-but-adversarial f64 (negative zeros, subnormals,
/// infinities for intervals where allowed).
fn rough_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u8..6) {
        0 => -0.0,
        1 => f64::MIN_POSITIVE / 2.0, // subnormal
        2 => -(rng.gen_range(0.0..1e12)),
        3 => rng.gen_range(-1.0..1.0),
        4 => rng.gen_range(0.0..1e-9),
        _ => rng.gen_range(-1e6..1e6),
    }
}

fn random_rect(rng: &mut StdRng, dim: usize) -> Rect {
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..dim {
        let a = rough_f64(rng);
        let b = rough_f64(rng);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    Rect::from_bounds(&lo, &hi)
}

fn random_expr(rng: &mut StdRng, depth: usize) -> LogicalExpr {
    if depth == 0 || rng.gen_bool(0.5) {
        if rng.gen_bool(0.6) {
            let dim = rng.gen_range(1..4);
            let lo: f64 = rng.gen_range(-0.2..1.0);
            let hi = (lo + rng.gen_range(0.0..1.0)).min(1.5);
            LogicalExpr::Pred(Predicate::percentile(
                random_rect(rng, dim),
                Interval::new(lo, hi),
            ))
        } else {
            let dim = rng.gen_range(1..4);
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            LogicalExpr::Pred(Predicate::topk_at_least(
                v,
                rng.gen_range(1..5),
                rough_f64(rng),
            ))
        }
    } else {
        let n = rng.gen_range(1..3);
        let xs: Vec<LogicalExpr> = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
        if rng.gen_bool(0.5) {
            LogicalExpr::And(xs)
        } else {
            LogicalExpr::Or(xs)
        }
    }
}

fn random_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0u8..11) {
        0 => Request::Query(random_expr(rng, 3)),
        1 => {
            let n = rng.gen_range(0..4);
            Request::QueryBatch((0..n).map(|_| random_expr(rng, 2)).collect())
        }
        2 | 3 => {
            let n = rng.gen_range(1..4usize);
            let dim = rng.gen_range(1..3usize);
            let datasets: Vec<Dataset> = (0..n)
                .map(|i| {
                    let rows: Vec<Vec<f64>> = (0..rng.gen_range(1..5))
                        .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
                        .collect();
                    Dataset::from_rows(format!("d{i}-µ"), rows)
                })
                .collect();
            let global_ids: Vec<u64> = (0..rng.gen_range(0..5u64)).map(|i| i * 3).collect();
            if rng.gen_bool(0.5) {
                Request::AddShard {
                    request_id: rng.gen(),
                    datasets,
                    global_ids,
                }
            } else {
                Request::RebuildShard {
                    shard: rng.gen_range(0..9),
                    request_id: rng.gen(),
                    datasets,
                    global_ids,
                }
            }
        }
        4 => Request::Stats,
        5 => Request::Ping { token: rng.gen() },
        6 => Request::Shutdown,
        7 => Request::Sleep {
            ms: rng.gen_range(0..500),
        },
        8 => Request::SplitShard {
            // Hostile values round-trip like honest ones — validity
            // against the served catalog is the server's concern, not the
            // codec's (the decoder only rejects an *empty* assignment).
            shard: rng.gen_range(0..100),
            move_ids: (0..rng.gen_range(1..5usize)).map(|_| rng.gen()).collect(),
        },
        9 => Request::Metrics,
        _ => Request::MergeShards {
            a: rng.gen_range(0..100),
            b: rng.gen_range(0..100),
        },
    }
}

fn random_engine_result(rng: &mut StdRng) -> Result<Vec<u64>, EngineError> {
    if rng.gen_bool(0.7) {
        let n = rng.gen_range(0..6);
        Ok((0..n).map(|_| rng.gen()).collect())
    } else if rng.gen_bool(0.5) {
        Err(EngineError::MissingRank(rng.gen_range(0..100)))
    } else {
        Err(EngineError::DimensionMismatch {
            expected: rng.gen_range(1..10),
            got: rng.gen_range(1..10),
        })
    }
}

fn random_snapshot(rng: &mut StdRng) -> HistogramSnapshot {
    let mut counts = [0u64; BUCKETS];
    for c in counts.iter_mut() {
        if rng.gen_bool(0.25) {
            *c = if rng.gen_bool(0.1) {
                u64::MAX
            } else {
                rng.gen_range(0..1_000_000)
            };
        }
    }
    HistogramSnapshot::from_counts(counts)
}

fn random_trace(rng: &mut StdRng) -> QueryTrace {
    QueryTrace {
        seq: rng.gen(),
        opcode: rng.gen(),
        decode_ns: rng.gen(),
        queue_ns: rng.gen(),
        execute_ns: rng.gen(),
        write_ns: rng.gen(),
        total_ns: rng.gen(),
        shards_scattered: rng.gen(),
        shards_skipped_box: rng.gen(),
        shards_skipped_synopsis: rng.gen(),
        bytes_in: rng.gen(),
        bytes_out: rng.gen(),
    }
}

fn random_metrics(rng: &mut StdRng) -> MetricsReport {
    MetricsReport {
        decode: random_snapshot(rng),
        queue: random_snapshot(rng),
        execute: random_snapshot(rng),
        write: random_snapshot(rng),
        routing: random_snapshot(rng),
        scatter: random_snapshot(rng),
        slow_queries: (0..rng.gen_range(0..4))
            .map(|_| random_trace(rng))
            .collect(),
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0u8..9) {
        0 => Response::Hits(random_engine_result(rng)),
        1 => {
            let n = rng.gen_range(0..4);
            Response::BatchHits((0..n).map(|_| random_engine_result(rng)).collect())
        }
        2 => Response::ShardAdded {
            shard: rng.gen_range(0..100),
        },
        3 => Response::Done,
        4 => Response::Stats(ServerStats {
            requests: rng.gen(),
            bytes_in: rng.gen(),
            cache_hits: rng.gen(),
            n_datasets: rng.gen(),
            ..Default::default()
        }),
        5 => Response::Pong { token: rng.gen() },
        6 => Response::Busy,
        7 => Response::Metrics(random_metrics(rng)),
        _ => Response::Error(dds_server::ServerError::new(
            match rng.gen_range(0u8..6) {
                0 => ServerErrorKind::Protocol,
                1 => ServerErrorKind::Ingest,
                2 => ServerErrorKind::Unavailable,
                3 => ServerErrorKind::InvalidQuery,
                4 => ServerErrorKind::Throttled,
                _ => ServerErrorKind::Internal,
            },
            "naïve message ☃",
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → encode is the identity on bytes for requests.
    #[test]
    fn requests_round_trip_bit_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = random_request(&mut rng);
        let (op, bytes) = req.encode();
        let decoded = Request::decode(op, &bytes).expect("generated request decodes");
        let (op2, bytes2) = decoded.encode();
        prop_assert_eq!((op, bytes), (op2, bytes2));
    }

    /// Same for responses (structural equality is also available here).
    #[test]
    fn responses_round_trip_bit_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resp = random_response(&mut rng);
        let (op, bytes) = resp.encode();
        let decoded = Response::decode(op, &bytes).expect("generated response decodes");
        prop_assert_eq!(&decoded, &resp);
        let (op2, bytes2) = decoded.encode();
        prop_assert_eq!((op, bytes), (op2, bytes2));
    }

    /// Decoding arbitrary bytes under every opcode NEVER panics — it
    /// returns Ok or a typed WireError. (The fuzz-shaped complement of
    /// the round-trip property.)
    #[test]
    fn decoding_garbage_never_panics(seed in 0u64..1_000_000, len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDECAF);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let op = rng.gen::<u8>();
        let _ = Request::decode(op, &bytes);
        let _ = Response::decode(op, &bytes);
    }

    /// Truncating a valid payload at any point yields a typed error (or,
    /// rarely, decodes as a shorter valid value — never a panic).
    #[test]
    fn truncated_payloads_are_typed(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let (op, bytes) = random_request(&mut rng).encode();
        prop_assume!(!bytes.is_empty());
        let cut = rng.gen_range(0..bytes.len());
        let _ = Request::decode(op, &bytes[..cut]);
    }

    /// Histogram merge is associative and commutative, so snapshots from
    /// many histograms (or many servers) combine in any order.
    #[test]
    fn histogram_merge_is_associative_and_commutative(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4157);
        let (a, b, c) = (
            random_snapshot(&mut rng),
            random_snapshot(&mut rng),
            random_snapshot(&mut rng),
        );
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
        // a ⊕ b == b ⊕ a
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// `quantile(q)` brackets the true quantile of the recorded samples:
    /// the reported value is >= the true value and < 2x it (the bucket
    /// bound documented on `HistogramSnapshot::quantile`), checked
    /// against an exact sorted-sample computation.
    #[test]
    fn quantile_brackets_the_exact_sample_quantile(
        mut samples in prop::collection::vec(0u64..1u64 << 40, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut counts = [0u64; BUCKETS];
        for &s in &samples {
            counts[bucket_index(s)] += 1;
        }
        let snap = HistogramSnapshot::from_counts(counts);
        let got = snap.quantile(q).expect("non-empty");
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(got >= exact, "quantile {got} under-reports exact {exact}");
        prop_assert_eq!(got, hi, "quantile must be the containing bucket's upper bound");
        prop_assert!(lo <= exact && exact <= hi);
    }
}

// ---------------------------------------------------------------------------
// Live-server corruption drills
// ---------------------------------------------------------------------------

fn tiny_server_with(cfg: ServerConfig) -> DdsServer {
    let (ptile, pref) = (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    let mut engine = ShardedEngine::new(&[1], ptile, pref);
    engine.add_shard_opts(
        &Repository::new(vec![Dataset::from_rows(
            "d",
            vec![vec![1.0], vec![2.0], vec![3.0]],
        )]),
        &[0],
        &BuildOptions::serial(),
    );
    DdsServer::serve(engine, "127.0.0.1:0", cfg).expect("bind")
}

fn tiny_server() -> DdsServer {
    tiny_server_with(ServerConfig::default())
}

fn ok_query() -> LogicalExpr {
    LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 10.0),
        0.5,
    ))
}

/// Asserts the server still serves correct answers on a fresh connection.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut client = DdsClient::connect(addr).expect("fresh connection");
    assert_eq!(client.query(&ok_query()).expect("query"), Ok(vec![0]));
}

#[test]
fn hostile_frames_get_typed_errors_and_never_kill_the_server() {
    let server = tiny_server();
    let addr = server.local_addr();

    // 1. Oversized declared length: typed error, connection closes, no
    //    allocation of the declared size.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match read_frame(&mut s, DEFAULT_MAX_FRAME_LEN) {
        Ok(frame) => {
            let resp = Response::decode(frame.opcode, &frame.payload).unwrap();
            match resp {
                Response::Error(e) => {
                    assert_eq!(e.kind, ServerErrorKind::Protocol);
                    assert!(e.message.contains("exceeds"), "{}", e.message);
                }
                other => panic!("expected a protocol error, got {other:?}"),
            }
        }
        Err(e) => panic!("expected an error frame, got {e:?}"),
    }
    assert_alive(addr);

    // 2. A frame too short to hold version + opcode.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&1u32.to_le_bytes()).unwrap();
    s.write_all(&[0]).unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));
    assert_alive(addr);

    // 3. Unknown protocol version: typed error, then close.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, 0x7F, opcode::PING, &[0u8; 8], DEFAULT_MAX_FRAME_LEN).unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    match Response::decode(frame.opcode, &frame.payload).unwrap() {
        Response::Error(e) => assert!(e.message.contains("version"), "{}", e.message),
        other => panic!("expected version error, got {other:?}"),
    }
    assert!(matches!(
        read_frame(&mut s, DEFAULT_MAX_FRAME_LEN),
        Err(FrameReadError::Eof)
    ));
    assert_alive(addr);

    // 4. Unknown opcode: typed error, session KEEPS SERVING (the frame
    //    boundary was intact).
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        0x5F,
        b"junk",
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));
    // Same connection, valid request: still answered.
    let (op, payload) = Request::Ping { token: 5 }.encode();
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        op,
        &payload,
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("pong");
    assert_eq!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Pong { token: 5 }
    );

    // 5. Semantic poison (NaN interval): typed error on the same session.
    let mut w = dds_server::wire::Writer::new();
    w.put_u8(0x00); // Pred
    w.put_u8(0x00); // Percentile
    w.put_u32(1);
    w.put_f64(0.0);
    w.put_f64(1.0);
    w.put_f64(f64::NAN);
    w.put_f64(1.0);
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::QUERY,
        &w.into_bytes(),
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));

    // 6. Trailing bytes after a valid payload.
    let (op, mut payload) = Request::Ping { token: 1 }.encode();
    payload.push(0xAB);
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        op,
        &payload,
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));
    assert_alive(addr);

    server.shutdown();
}

#[test]
fn sleep_is_rejected_unless_the_server_opts_in() {
    // The backpressure drills enable it explicitly; a default-config
    // server must refuse the executor-occupancy primitive, typed.
    let server = tiny_server();
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    match client.sleep(10) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Protocol);
            assert!(e.message.contains("disabled"), "{}", e.message);
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    assert_alive(server.local_addr());
    server.shutdown();
}

#[test]
fn executor_panics_are_isolated_and_answered_typed() {
    // A panicking job must NOT kill its executor: with 2 executors, two
    // unwinds would otherwise drop the queue receiver and leave a
    // still-listening server answering `unavailable` forever. Drive MORE
    // panics than executors through the drill hook and prove the pool
    // survives every one of them.
    let (ptile, pref) = (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    let mut engine = ShardedEngine::new(&[1], ptile, pref);
    engine.add_shard_opts(
        &Repository::new(vec![Dataset::from_rows(
            "d",
            vec![vec![1.0], vec![2.0], vec![3.0]],
        )]),
        &[0],
        &BuildOptions::serial(),
    );
    let cfg = ServerConfig {
        executors: 2,
        allow_sleep: true, // the panic drill rides the Sleep opt-in
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(engine, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    let mut client = DdsClient::connect(addr).expect("connect");
    for _ in 0..4 {
        match client.sleep(u32::MAX) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.kind, ServerErrorKind::Internal);
                assert!(e.message.contains("panic"), "{}", e.message);
            }
            other => panic!("expected a typed internal error, got {other:?}"),
        }
        // The session survives its own panicking request...
        client.ping().expect("session alive after panic");
        // ...and real work is still executed (an executor answered, so
        // the pool is alive — 4 panics > 2 executors proves isolation).
        assert_eq!(client.query(&ok_query()).expect("query"), Ok(vec![0]));
    }
    assert_alive(addr);
    let stats = server.shutdown();
    assert_eq!(stats.executor_panics, 4);
    // Every dequeued job was answered, panicking ones included.
    assert_eq!(stats.jobs_dequeued, stats.jobs_completed);
}

#[test]
fn oversized_responses_get_a_typed_error_not_a_dead_connection() {
    // 40 one-point datasets all match the query, so the Hits payload
    // (6 + 40·8 bytes) cannot fit a 128-byte frame bound; small requests
    // and the fallback error frame can.
    let (ptile, pref) = (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    let mut engine = ShardedEngine::new(&[1], ptile, pref);
    let datasets: Vec<Dataset> = (0..40)
        .map(|i| Dataset::from_rows(format!("d{i}"), vec![vec![i as f64]]))
        .collect();
    let ids: Vec<u64> = (0..40).collect();
    engine.add_shard_opts(&Repository::new(datasets), &ids, &BuildOptions::serial());
    let cfg = ServerConfig {
        max_frame_len: 128,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(engine, "127.0.0.1:0", cfg).expect("bind");

    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    let all = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(-100.0, 100.0),
        0.0,
    ));
    match client.query(&all) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Internal);
            assert!(e.message.contains("frame bound"), "{}", e.message);
        }
        other => panic!("expected a typed frame-bound error, got {other:?}"),
    }
    // The stream stayed in sync: the same session keeps serving, and a
    // response that fits the bound comes through untouched.
    client
        .ping()
        .expect("session alive after oversized response");
    let one = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(-0.5, 0.5),
        0.5,
    ));
    assert_eq!(client.query(&one).expect("small query"), Ok(vec![0]));
    server.shutdown();
}

#[test]
fn mid_request_disconnects_never_wedge_the_server() {
    let server = tiny_server();
    let addr = server.local_addr();

    // Disconnect inside the length prefix.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0x10]).unwrap();
    }
    // Disconnect inside a declared body.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[PROTOCOL_VERSION, opcode::QUERY, 1, 2, 3])
            .unwrap();
    }
    // Disconnect right after a full request, before reading the reply
    // (the executor's answer goes nowhere — correctly dropped).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let (op, payload) = Request::Query(ok_query()).encode();
        write_frame(
            &mut s,
            PROTOCOL_VERSION,
            op,
            &payload,
            DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
    }
    // An HTTP client knocking on the wrong port: its request line reads
    // as an absurd length prefix — typed error or close, never a panic.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let _ = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN);
    }
    assert_alive(addr);
    let stats = server.shutdown();
    assert!(stats.wire_errors >= 1);
}

#[test]
fn hostile_expressions_are_rejected_typed() {
    let server = tiny_server();
    let addr = server.local_addr();
    let mut client = DdsClient::connect(addr).expect("connect");

    // DNF bomb: 2^7 clauses exceeds the engine bound — rejected at
    // decode, never reaching `to_dnf`'s panic.
    let or = LogicalExpr::Or(vec![ok_query(), ok_query()]);
    let bomb = LogicalExpr::And(vec![or; 7]);
    match client.query(&bomb) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Protocol);
            assert!(e.message.contains("DNF"), "{}", e.message);
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }

    // Deep nesting: a hand-rolled frame 80 levels deep.
    let mut w = dds_server::wire::Writer::new();
    for _ in 0..80 {
        w.put_u8(0x01);
        w.put_u32(1);
    }
    w.put_u8(0x00);
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::QUERY,
        &w.into_bytes(),
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    match Response::decode(frame.opcode, &frame.payload).unwrap() {
        Response::Error(e) => assert!(e.message.contains("deep"), "{}", e.message),
        other => panic!("expected nesting rejection, got {other:?}"),
    }

    // A zero-child Or inside a wide And: the DNF clause *product* is
    // zero (slipping a naive bound check), but expansion would
    // materialize ~100^3 intermediate clauses first. Rejected at decode
    // before any expansion happens.
    let wide_or = LogicalExpr::Or(vec![ok_query(); 100]);
    let zero_bomb = LogicalExpr::And(vec![
        wide_or.clone(),
        wide_or.clone(),
        wide_or,
        LogicalExpr::Or(vec![]),
    ]);
    match client.query(&zero_bomb) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::Protocol);
            assert!(e.message.contains("zero-child"), "{}", e.message);
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }

    // A hostile count (declares 2^30 datasets): typed, no allocation.
    let mut w = dds_server::wire::Writer::new();
    w.put_u32(1 << 30);
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::ADD_SHARD,
        &w.into_bytes(),
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));

    assert_alive(addr);
    server.shutdown();
}

#[test]
fn hostile_metrics_frames_are_typed_and_leave_the_server_standing() {
    let server = tiny_server();
    let addr = server.local_addr();

    // A Metrics request carries no payload; trailing bytes are a framing
    // violation and must be rejected typed on the live session.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::METRICS,
        b"junk",
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));
    // The same session keeps serving: a well-formed Metrics request is
    // answered with a decodable report.
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::METRICS,
        &[],
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("metrics frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Metrics(_)
    ));

    // The *reply* opcode arriving as a request is an unknown opcode:
    // typed error, session intact.
    write_frame(
        &mut s,
        PROTOCOL_VERSION,
        opcode::METRICS_REPLY,
        &[],
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).expect("error frame");
    assert!(matches!(
        Response::decode(frame.opcode, &frame.payload).unwrap(),
        Response::Error(e) if e.kind == ServerErrorKind::Protocol
    ));
    assert_alive(addr);
    server.shutdown();

    // Hostile METRICS_REPLY payloads on the client-side decoder: every
    // one is a typed error, never a panic, never an allocation sized by
    // the hostile count.
    //
    // Too few histograms.
    let mut w = dds_server::wire::Writer::new();
    w.put_u32(3);
    assert!(Response::decode(opcode::METRICS_REPLY, &w.into_bytes()).is_err());
    // A histogram whose bucket count disagrees with this build.
    let mut w = dds_server::wire::Writer::new();
    w.put_u32(6);
    w.put_u32(32);
    for _ in 0..32 {
        w.put_u64(0);
    }
    assert!(Response::decode(opcode::METRICS_REPLY, &w.into_bytes()).is_err());
    // A hostile trace count (declares 2^30 traces after valid histograms).
    let mut w = dds_server::wire::Writer::new();
    w.put_u32(6);
    for _ in 0..6 {
        w.put_u32(BUCKETS as u32);
        for _ in 0..BUCKETS {
            w.put_u64(0);
        }
    }
    w.put_u32(1 << 30);
    assert!(Response::decode(opcode::METRICS_REPLY, &w.into_bytes()).is_err());
    // Truncation mid-histogram.
    let (op, bytes) = Response::Metrics(MetricsReport::default()).encode();
    assert!(Response::decode(op, &bytes[..bytes.len() / 2]).is_err());
}

#[test]
fn hostile_lifecycle_indices_are_typed_invalid_query_never_a_panic() {
    // The tiny server holds ONE shard with ONE dataset (global id 0), so
    // every lifecycle request below names state that doesn't exist. Each
    // must come back as the permanent `invalid-query` kind — the ops
    // carry no data, so "ingest rejected" would be the wrong signal —
    // and the server must keep serving after every one.
    let server = tiny_server();
    let addr = server.local_addr();
    let mut client = DdsClient::connect(addr).expect("connect");

    let expect_invalid = |result: Result<usize, ClientError>, fragment: &str| match result {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ServerErrorKind::InvalidQuery, "{}", e.message);
            assert!(e.message.contains(fragment), "{}", e.message);
        }
        other => panic!("expected a typed invalid-query, got {other:?}"),
    };
    // Out-of-range shard index.
    expect_invalid(client.split_shard(5, &[0]), "no such shard");
    // An id the shard does not hold.
    expect_invalid(client.split_shard(0, &[7]), "not held by shard");
    // Moving everything leaves the staying side empty.
    expect_invalid(client.split_shard(0, &[0]), "leaves a side empty");
    // A duplicated id in the assignment.
    expect_invalid(client.split_shard(0, &[0, 0]), "repeats");
    // Merging a shard with itself, and with a shard that does not exist.
    expect_invalid(client.merge_shards(0, 0), "with itself");
    expect_invalid(client.merge_shards(0, 9), "no such shard");

    // Nothing transitioned, nothing panicked, answers unchanged.
    assert_alive(addr);
    let stats = server.shutdown();
    assert_eq!(stats.shard_splits, 0);
    assert_eq!(stats.shard_merges, 0);
    assert_eq!(stats.executor_panics, 0);
    assert_eq!(stats.n_shards, 1);
}

#[test]
fn a_slow_client_cannot_stall_other_sessions() {
    // ONE I/O thread, so the slow and the fast session share a single
    // readiness loop: if a byte-trickled frame held the loop hostage
    // (as a blocking `read_exact` would), every fast round trip below
    // would stall behind it. The readiness design makes each trickled
    // byte cost one nonblocking read, nothing more.
    let server = tiny_server_with(ServerConfig {
        io_threads: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut frame = Vec::new();
    let (op, payload) = Request::Ping { token: 9 }.encode();
    write_frame(
        &mut frame,
        PROTOCOL_VERSION,
        op,
        &payload,
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let mut fast = DdsClient::connect(addr).expect("fast client");
    for byte in &frame {
        slow.write_all(std::slice::from_ref(byte)).unwrap();
        // A full round trip between every byte of the slow frame: the
        // loop is demonstrably not parked on the trickler.
        assert_eq!(fast.query(&ok_query()).expect("fast query"), Ok(vec![0]));
    }
    // The trickled frame completes and is answered normally.
    let resp = read_frame(&mut slow, DEFAULT_MAX_FRAME_LEN).expect("slow pong");
    assert_eq!(
        Response::decode(resp.opcode, &resp.payload).unwrap(),
        Response::Pong { token: 9 }
    );
    server.shutdown();
}

#[test]
fn client_timeouts_are_typed_and_leave_the_server_standing() {
    let server = tiny_server_with(ServerConfig {
        allow_sleep: true,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut client = DdsClient::connect_with(
        addr,
        ClientConfig {
            timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .expect("connect with timeout");
    // The server answers after 1.5s; the client gives up at 100ms.
    match client.sleep(1500) {
        Err(ClientError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    drop(client); // a timed-out connection is desynchronised — discard it
    assert_alive(addr);
    server.shutdown();
}
