//! Pins the [`ServerStats`] append-only wire contract itself: the
//! counter count and the exact serialization order must match the table
//! in `PROTOCOL.md`. A future counter added anywhere but the END of the
//! list fails here — silently reordering would corrupt every deployed
//! client's decoding.

use dds_core::framework::{Dataset, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_server::{DdsClient, DdsServer, Response, ServerConfig, ServerStats};
use std::time::{Duration, Instant};

/// The canonical order, copied from PROTOCOL.md's stats table. New
/// counters append; nothing moves.
const FIELD_ORDER: &[&str] = &[
    "requests",
    "queries",
    "batch_queries",
    "batch_exprs",
    "admin_ops",
    "busy_rejections",
    "unavailable_rejections",
    "wire_errors",
    "jobs_admitted",
    "jobs_dequeued",
    "jobs_completed",
    "bytes_in",
    "bytes_out",
    "sessions_opened",
    "sessions_active",
    "cache_hits",
    "cache_misses",
    "index_queries",
    "shards_routed_past",
    "n_shards",
    "n_datasets",
    "executor_panics",
    "sessions_throttled",
    "buffers_reused",
    "shard_splits",
    "shard_merges",
    "sessions_reaped",
    "retries_attempted",
    "requests_deduped",
    "shards_routed_by_synopsis",
];

/// A stats value whose every counter holds its own 1-based position in
/// the canonical order — so the raw payload reveals exactly which field
/// was serialized where.
fn position_stamped() -> ServerStats {
    ServerStats {
        requests: 1,
        queries: 2,
        batch_queries: 3,
        batch_exprs: 4,
        admin_ops: 5,
        busy_rejections: 6,
        unavailable_rejections: 7,
        wire_errors: 8,
        jobs_admitted: 9,
        jobs_dequeued: 10,
        jobs_completed: 11,
        bytes_in: 12,
        bytes_out: 13,
        sessions_opened: 14,
        sessions_active: 15,
        cache_hits: 16,
        cache_misses: 17,
        index_queries: 18,
        shards_routed_past: 19,
        n_shards: 20,
        n_datasets: 21,
        executor_panics: 22,
        sessions_throttled: 23,
        buffers_reused: 24,
        shard_splits: 25,
        shard_merges: 26,
        sessions_reaped: 27,
        retries_attempted: 28,
        requests_deduped: 29,
        shards_routed_by_synopsis: 30,
    }
}

#[test]
fn stats_frame_serializes_every_counter_in_protocol_md_order() {
    let (_, payload) = Response::Stats(position_stamped()).encode();
    // Payload grammar: count:u32, then count × u64, all little-endian.
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    assert_eq!(
        count,
        FIELD_ORDER.len(),
        "counter count drifted from PROTOCOL.md's table"
    );
    assert_eq!(payload.len(), 4 + 8 * count, "payload is exactly the list");
    for (i, name) in FIELD_ORDER.iter().enumerate() {
        let off = 4 + 8 * i;
        let got = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
        assert_eq!(
            got,
            (i + 1) as u64,
            "slot {i} of the stats frame must hold `{name}` — a counter \
             was inserted or reordered instead of appended"
        );
    }
}

#[test]
fn newest_counters_sit_at_the_end_of_the_frame() {
    // The append-only rule in action: the newest counter is the LAST
    // slot, so a pre-existing client decoding only the prefix it knows
    // still reads every older counter correctly.
    let tail = &FIELD_ORDER[FIELD_ORDER.len() - 4..];
    assert_eq!(
        tail,
        &[
            "sessions_reaped",
            "retries_attempted",
            "requests_deduped",
            "shards_routed_by_synopsis"
        ]
    );
}

#[test]
fn stats_round_trip_is_lossless_at_the_current_width() {
    let stamped = position_stamped();
    let (op, payload) = Response::Stats(stamped).encode();
    match Response::decode(op, &payload).expect("decode") {
        Response::Stats(got) => assert_eq!(got, position_stamped()),
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn sessions_active_is_a_gauge_that_returns_to_zero() {
    // Every other field in the frame is a monotonic counter;
    // `sessions_active` alone is a gauge (documented in PROTOCOL.md).
    // Pin the gauge behavior: it rises with live connections and falls
    // back to exactly zero once every client is gone, while the
    // `sessions_opened` counter keeps its high-water history.
    let mut engine = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    engine.add_shard_opts(
        &Repository::new(vec![Dataset::from_rows("d", vec![vec![1.0]])]),
        &[0],
        &BuildOptions::serial(),
    );
    let server = DdsServer::serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");

    let mut clients: Vec<DdsClient> = (0..3)
        .map(|_| DdsClient::connect(server.local_addr()).expect("connect"))
        .collect();
    for c in &mut clients {
        c.ping().expect("ping");
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_active, 3);
    assert_eq!(stats.sessions_opened, 3);

    drop(clients);
    // Disconnects are observed by the I/O threads asynchronously.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.sessions_active == 0 {
            assert_eq!(stats.sessions_opened, 3, "the counter keeps history");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sessions_active stuck at {} after all clients disconnected",
            stats.sessions_active
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}
