//! Criterion micro-benchmarks for the substrates: orthogonal search
//! backends (A2 companion), dynamic updates (E9), the exact 1-d
//! structure (E4), the worker pool behind the parallel builds, the
//! batch query API (E12 companion), and the sharded scatter/gather
//! path (E14 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dds_bench::experiments::setup::{clustered_workload, mixed_workload, ptile_queries};
use dds_core::engine::MixedQueryEngine;
use dds_core::framework::{Interval, LogicalExpr, Predicate, Repository};
use dds_core::pool::{mix_seed, par_map, BuildOptions};
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::{DynamicPtileIndex, ExactCPtile1D, PtileBuildParams};
use dds_core::scratch::QueryScratch;
use dds_core::shard::ShardedEngine;
use dds_rangetree::{BruteForce, BuildableIndex, KdTree, OrthoIndex, RangeTree, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_lifted(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lo = rng.gen_range(0.0..100.0);
            let hi = lo + rng.gen_range(0.0..20.0);
            vec![lo, hi, rng.gen_range(0.0..1.0)]
        })
        .collect()
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ortho_backend_report");
    group.sample_size(30);
    let n = 100_000;
    let pts = random_lifted(n, 0xA2);
    let kd = KdTree::build(3, pts.clone());
    let rt = RangeTree::build(3, pts.clone());
    let brute = BruteForce::build(3, pts);
    let region = Region::all(3)
        .with_lo(0, 30.0, false)
        .with_hi(1, 45.0, false)
        .with_lo(2, 0.8, false);
    group.bench_function(BenchmarkId::new("kdtree", n), |b| {
        b.iter(|| {
            let mut out = Vec::new();
            kd.report(&region, &mut out);
            out
        })
    });
    group.bench_function(BenchmarkId::new("rangetree", n), |b| {
        b.iter(|| {
            let mut out = Vec::new();
            rt.report(&region, &mut out);
            out
        })
    });
    group.bench_function(BenchmarkId::new("bruteforce", n), |b| {
        b.iter(|| {
            let mut out = Vec::new();
            brute.report(&region, &mut out);
            out
        })
    });
    group.finish();
}

fn bench_dynamic_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_ptile");
    group.sample_size(10);
    let wl = clustered_workload(1000, 300, 1, 0xE9);
    let extra = clustered_workload(64, 300, 1, 0xE9 + 1);
    group.bench_function("insert_synopsis", |b| {
        let mut idx = DynamicPtileIndex::new(1, PtileBuildParams::default().with_rect_budget(496));
        for s in &wl.synopses {
            idx.insert_synopsis(s);
        }
        let mut i = 0;
        b.iter(|| {
            let h = idx.insert_synopsis(&extra.synopses[i % extra.synopses.len()]);
            i += 1;
            idx.remove_synopsis(h)
        })
    });
    group.finish();
}

fn bench_exact1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_cptile_1d");
    group.sample_size(20);
    let wl = mixed_workload(4000, 200, 1, 0xE4);
    let repo = Repository::from_point_sets(wl.sets.clone());
    let idx = ExactCPtile1D::build(&repo, Interval::new(0.3, 0.7));
    group.bench_function("query_n4000", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let lo = (i % 80) as f64;
            i += 1;
            idx.query(lo, lo + 10.0)
        })
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_pool_par_map");
    group.sample_size(20);
    // A build-shaped work unit: seed an RNG per item, draw a few hundred
    // values, sort — roughly one dataset coreset's worth of CPU.
    let items: Vec<u64> = (0..256).collect();
    let unit = |i: usize, &seed: &u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, i as u64));
        let mut xs: Vec<f64> = (0..512).map(|_| rng.gen_range(0.0..1.0)).collect();
        xs.sort_unstable_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    for threads in [1usize, 2, 4, 8] {
        let opts = BuildOptions::with_threads(threads);
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| par_map(&opts, &items, unit))
        });
    }
    // Spawn/merge overhead floor: trivial units, many threads.
    group.bench_function("overhead_trivial_units", |b| {
        let opts = BuildOptions::with_threads(8);
        b.iter(|| par_map(&opts, &items, |i, x| x + i as u64))
    });
    group.finish();
}

fn bench_batch_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_query");
    group.sample_size(10);
    let wl = mixed_workload(1000, 300, 1, 0xB12);
    let repo = Repository::from_point_sets(wl.sets.clone());
    let engine = MixedQueryEngine::build(
        &repo,
        &[1],
        PtileBuildParams::default().with_rect_budget(496),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    );
    let qs = ptile_queries(&wl, 16, 10, engine.ptile_slack() / 2.0, 0xB12 + 1);
    let exprs: Vec<LogicalExpr> = (0..128)
        .map(|i| {
            let q = &qs[i % qs.len()];
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile(q.rect.clone(), q.theta)),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, 40.0)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(q.rect.clone(), q.a)),
            ])
        })
        .collect();
    // Baseline: the naive sequential loop (fresh scratch per query).
    group.bench_function("sequential_fresh_scratch", |b| {
        b.iter(|| exprs.iter().map(|e| engine.query(e)).collect::<Vec<_>>())
    });
    // Sequential loop with one reused scratch (allocation-free inner state).
    group.bench_function("sequential_reused_scratch", |b| {
        b.iter(|| {
            let mut scratch = QueryScratch::new();
            exprs
                .iter()
                .map(|e| engine.query_with(e, &mut scratch))
                .collect::<Vec<_>>()
        })
    });
    // The batch API: shared mask cache + per-worker scratch over the pool.
    // The cache is cross-call since PR 4, so each iteration invalidates it
    // first: these rows measure cold batch execution (comparable to the
    // sequential baselines, which bypass the cache); warm-cache behaviour
    // is the sharded_query group's `_warm` rows.
    for threads in [1usize, 2, 4, 8] {
        let opts = BuildOptions::with_threads(threads);
        group.bench_function(BenchmarkId::new("query_batch_threads", threads), |b| {
            b.iter(|| {
                engine.mask_cache().invalidate();
                engine.query_batch_opts(&exprs, &opts)
            })
        });
    }
    group.finish();
}

fn bench_sharded_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_query");
    group.sample_size(10);
    let n = 1000;
    let spec = dds_workload::RepoSpec::mixed(n, 300, 1, 0xB12);
    let wl = mixed_workload(n, 300, 1, 0xB12);
    let params = || PtileBuildParams::default().with_rect_budget(496);
    let pref = || PrefBuildParams::exact_centralized().with_eps(0.05);
    let unsharded = MixedQueryEngine::build(
        &Repository::from_point_sets(wl.sets.clone()),
        &[1],
        params(),
        pref(),
    );
    let qs = ptile_queries(&wl, 16, 10, unsharded.ptile_slack() / 2.0, 0xB12 + 1);
    let exprs: Vec<LogicalExpr> = (0..128)
        .map(|i| {
            let q = &qs[i % qs.len()];
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile(q.rect.clone(), q.theta)),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, 40.0)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(q.rect.clone(), q.a)),
            ])
        })
        .collect();
    // Unsharded reference: the same batch through one engine.
    group.bench_function("unsharded_batch", |b| {
        b.iter(|| unsharded.query_batch_opts(&exprs, &BuildOptions::with_threads(4)))
    });
    // The scatter/gather path at a few shard counts; steady-state (warm
    // cross-call caches) is the read-mostly service regime.
    for shards in [2usize, 4, 8] {
        let mut svc = ShardedEngine::new(&[1], params(), pref());
        for shard in spec.shards(shards) {
            svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
        }
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(4));
        group.bench_function(BenchmarkId::new("sharded_batch_warm", shards), |b| {
            b.iter(|| svc.query_batch_opts(&exprs, &BuildOptions::with_threads(4)))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    let n = 1000;
    let spec = dds_workload::RepoSpec::mixed(n, 300, 1, 0xE18);
    let params = || {
        PtileBuildParams::default()
            .with_rect_budget(496)
            .with_phi_datasets(n)
    };
    let pref = || PrefBuildParams::exact_centralized().with_eps(0.05);
    // Selective traffic (narrow interior rectangles, θ lower bound far
    // above the sampling margin): the regime the synopsis tier prunes.
    let exprs: Vec<LogicalExpr> =
        dds_workload::RequestStreamSpec::selective(128, 0xE18).exprs(&spec);
    for shards in [2usize, 8] {
        let build = |synopsis: bool| {
            let mut svc =
                ShardedEngine::new(&[1], params(), pref()).with_synopsis_routing(synopsis);
            for shard in spec.shards(shards) {
                svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
            }
            // Warm the caches: these rows compare steady-state routing,
            // not first-touch mask computation.
            let _ = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(4));
            svc
        };
        let box_only = build(false);
        group.bench_function(BenchmarkId::new("box_only_warm", shards), |b| {
            b.iter(|| box_only.query_batch_opts(&exprs, &BuildOptions::with_threads(4)))
        });
        let full = build(true);
        group.bench_function(BenchmarkId::new("synopsis_warm", shards), |b| {
            b.iter(|| full.query_batch_opts(&exprs, &BuildOptions::with_threads(4)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backends,
    bench_dynamic_insert,
    bench_exact1d,
    bench_pool,
    bench_batch_query,
    bench_sharded_query,
    bench_routing
);
criterion_main!(benches);
