//! Criterion micro-benchmarks for the Pref structures (E6/E7 companions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dds_bench::experiments::setup::{ball_workload, pref_queries};
use dds_core::baseline::LinearScanPref;
use dds_core::framework::Repository;
use dds_core::pref::{PrefBuildParams, PrefIndex, PrefMultiIndex};

fn bench_pref_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("pref_query");
    group.sample_size(30);
    let k = 10;
    for n in [1000usize, 8000] {
        let wl = ball_workload(n, 300, 2, 0xD0);
        let idx = PrefIndex::build(
            &wl.synopses,
            k,
            PrefBuildParams::exact_centralized().with_eps(0.05),
        );
        let queries = pref_queries(&wl, k, 8, 0.01, 0xD0 + 1);
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (v, a) = &queries[i % queries.len()];
                i += 1;
                idx.query(v, *a)
            })
        });
        let repo = Repository::from_point_sets(wl.sets.clone());
        let scan = LinearScanPref::build(&repo);
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (v, a) = &queries[i % queries.len()];
                i += 1;
                scan.query(v, k, *a)
            })
        });
    }
    group.finish();
}

fn bench_pref_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pref_build");
    group.sample_size(10);
    let wl = ball_workload(2000, 200, 2, 0xD1);
    group.bench_function("n2000_eps0.05", |b| {
        b.iter(|| {
            PrefIndex::build(
                &wl.synopses,
                5,
                PrefBuildParams::exact_centralized().with_eps(0.05),
            )
        })
    });
    group.finish();
}

fn bench_pref_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("pref_multi_m2");
    group.sample_size(20);
    let k = 5;
    let wl = ball_workload(2000, 200, 2, 0xD2);
    let idx = PrefMultiIndex::build(
        &wl.synopses,
        k,
        2,
        PrefBuildParams::exact_centralized().with_eps(0.1),
    );
    let queries = pref_queries(&wl, k, 8, 0.02, 0xD2 + 1);
    // Pre-materialize so the bench measures the cached path.
    for pair in queries.chunks(2) {
        if pair.len() == 2 {
            let _ = idx.query(&[
                (pair[0].0.clone(), pair[0].1),
                (pair[1].0.clone(), pair[1].1),
            ]);
        }
    }
    group.bench_function("conjunction_cached", |b| {
        let mut i = 0;
        b.iter(|| {
            let q1 = &queries[i % queries.len()];
            let q2 = &queries[(i + 1) % queries.len()];
            i += 1;
            idx.query(&[(q1.0.clone(), q1.1), (q2.0.clone(), q2.1)])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pref_query,
    bench_pref_build,
    bench_pref_multi
);
criterion_main!(benches);
