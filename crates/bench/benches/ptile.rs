//! Criterion micro-benchmarks for the Ptile structures (E1/E3/E5/A3
//! companions; the `experiments` binary prints the paper-style tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dds_bench::experiments::setup::{clustered_workload, ptile_queries};
use dds_core::baseline::LinearScanPtile;
use dds_core::framework::{Interval, Repository};
use dds_core::ptile::{PtileBuildParams, PtileMultiIndex, PtileRangeIndex, PtileThresholdIndex};

fn params() -> PtileBuildParams {
    PtileBuildParams::default().with_rect_budget(496)
}

fn bench_threshold_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptile_threshold_query");
    group.sample_size(20);
    for n in [1000usize, 4000] {
        let wl = clustered_workload(n, 300, 1, 0xBE);
        let idx = PtileThresholdIndex::build(&wl.synopses, params());
        let queries = ptile_queries(&wl, 8, 10, idx.margin(), 0xBE + 1);
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                idx.query(&q.rect, q.a)
            })
        });
        let repo = Repository::from_point_sets(wl.sets.clone());
        let scan = LinearScanPtile::build(&repo);
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                scan.query(&q.rect, Interval::new(q.a, 1.0))
            })
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptile_range_query");
    group.sample_size(20);
    for n in [1000usize, 4000] {
        let wl = clustered_workload(n, 300, 1, 0xBF);
        let idx = PtileRangeIndex::build(&wl.synopses, params());
        let queries = ptile_queries(&wl, 8, 10, idx.margin(), 0xBF + 1);
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                idx.query(&q.rect, q.theta)
            })
        });
    }
    group.finish();
}

fn bench_multi_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptile_multi_query_m2");
    group.sample_size(10);
    let n = 500;
    let wl = clustered_workload(n, 200, 1, 0xC0);
    let p = PtileBuildParams::default()
        .with_rect_budget(4096)
        .with_empirical_eps(0.2);
    let idx = PtileMultiIndex::build(&wl.synopses, 2, p);
    let queries = ptile_queries(&wl, 8, 15, idx.margin(), 0xC0 + 1);
    group.bench_function("conjunction", |b| {
        let mut i = 0;
        b.iter(|| {
            let q1 = &queries[i % queries.len()];
            let q2 = &queries[(i + 1) % queries.len()];
            i += 1;
            idx.query(&[(q1.rect.clone(), q1.theta), (q2.rect.clone(), q2.theta)])
        })
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptile_build");
    group.sample_size(10);
    let wl = clustered_workload(500, 300, 1, 0xC1);
    group.bench_function("threshold_n500", |b| {
        b.iter(|| PtileThresholdIndex::build(&wl.synopses, params()))
    });
    group.bench_function("range_n500", |b| {
        b.iter(|| PtileRangeIndex::build(&wl.synopses, params()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_threshold_query,
    bench_range_query,
    bench_multi_query,
    bench_construction
);
criterion_main!(benches);
