//! Timing helpers.

use std::time::{Duration, Instant};

/// Runs `f` once, returning its result and wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Median of the durations (empty → zero).
pub fn median_duration(mut ds: Vec<Duration>) -> Duration {
    if ds.is_empty() {
        return Duration::ZERO;
    }
    ds.sort_unstable();
    ds[ds.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median_duration(vec![d(3), d(1), d(2)]), d(2));
        assert_eq!(median_duration(vec![]), Duration::ZERO);
    }

    #[test]
    fn time_returns_result() {
        let (x, d) = time(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(d < Duration::from_secs(1));
    }
}
