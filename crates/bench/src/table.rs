//! Minimal markdown table printer for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned markdown table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a `Duration` compactly (µs / ms / s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Formats a byte count compactly.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1 << 10 {
        format!("{b}B")
    } else if b < 1 << 20 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["N", "time"]);
        t.row(vec!["1000".into(), "1.2ms".into()]);
        t.row(vec!["2".into(), "900us".into()]);
        let r = t.render();
        assert!(r.contains("### demo"));
        assert!(r.contains("| 1000 |"));
        assert!(r.lines().filter(|l| l.starts_with('|')).count() == 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(500)),
            "500.0us"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(12)),
            "12.00ms"
        );
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
