//! Allocation-count hook for the query-path experiments.
//!
//! The scratch-reuse work (E12) is verified with a *measured* allocation
//! count, not just a timing delta. The library crate forbids `unsafe`, so
//! the counting [`std::alloc::GlobalAlloc`] itself lives in the
//! `experiments` **binary** (its crate root installs it with
//! `#[global_allocator]`); it reports every allocation into
//! [`ALLOCATIONS`] here, where the experiment code can read it. When the
//! harness runs without the counting allocator (e.g. criterion benches),
//! [`installed`] stays `false` and the experiments print `n/a` instead of
//! a bogus zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Total heap allocations observed by the counting allocator (monotone).
pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Declares that a counting global allocator is feeding [`ALLOCATIONS`].
/// Called once from the `experiments` binary's `main`.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// True when allocation counts are real (counting allocator installed).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Current allocation count; subtract two readings to meter a section.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations performed by `f`, or `None` without a counting allocator.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    if !installed() {
        return (f(), None);
    }
    let before = allocations();
    let out = f();
    (out, Some(allocations() - before))
}
