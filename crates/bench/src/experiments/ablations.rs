//! A1–A5 — ablations of the design choices called out in DESIGN.md §6.

use super::setup::{clustered_workload, mixed_workload, ptile_queries};
use super::Scale;
use crate::table::{fmt_bytes, fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::framework::Interval;
use dds_core::guarantee::check_ptile;
use dds_core::ptile::{PtileBuildParams, PtileThresholdIndex};
use dds_geom::{CoordGrid, Point, Rect};
use dds_rangetree::{BruteForce, BuildableIndex, KdTree, OrthoIndex, RangeTree, Region};
use dds_synopsis::{
    error, EquiDepthHistogram, GaussianMixtureSynopsis, GridHistogram, PercentileSynopsis,
    UniformSampleSynopsis,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A1 — one-step-expansion pairs vs the paper's literal pair enumeration:
/// pair counts and agreement of the query-matchable pair on random queries.
pub fn a1_pair_enumeration(_scale: Scale) -> Table {
    let mut table = Table::new(
        "A1 — canonical pairs: literal enumeration vs one-step expansion",
        &[
            "sample",
            "|R_i|",
            "literal pairs",
            "one-step pairs",
            "queries",
            "mismatches",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xA1);
    for s in [6usize, 10, 14, 18] {
        let pts: Vec<Point> = (0..s)
            .map(|_| Point::one(rng.gen_range(0.0..100.0)))
            .collect();
        // The literal enumeration needs the paper's bounding-box facet
        // projections S̄ to have matchable pairs near the extremes; build
        // both representations over the same box-augmented grid (queries
        // stay strictly inside the box).
        let bbox = Rect::interval(-10.0, 110.0);
        let grid = CoordGrid::with_box(&pts, &bbox);
        let rects = grid.enumerate_rects();
        // Literal Algorithm-3 enumeration: all canonical pairs.
        let mut literal: Vec<(Rect, Rect)> = Vec::new();
        for rho in &rects {
            for hat in &rects {
                if grid.is_canonical_pair(rho, hat) {
                    literal.push((rho.clone(), hat.clone()));
                }
            }
        }
        // One pair per rectangle.
        let onestep: Vec<(Rect, Rect)> = rects
            .iter()
            .map(|r| (r.clone(), grid.one_step_expansion(r)))
            .collect();
        // Agreement: for random queries, the matchable pair (ρ ⊆ R ⊂⊂ ρ̂)
        // must select the same maximal ρ in both representations.
        let mut mismatches = 0usize;
        let n_queries = 200;
        for _ in 0..n_queries {
            // Queries strictly inside the bounding box, per the paper's
            // WLOG assumption (Section 4.3). The ±∞-guard representation
            // also answers out-of-box queries; the literal one cannot.
            let a = rng.gen_range(-5.0..80.0);
            let b = a + rng.gen_range(0.0..25.0);
            let r = Rect::interval(a, b);
            let pick = |pairs: &[(Rect, Rect)]| -> Vec<Rect> {
                let mut hits: Vec<Rect> = pairs
                    .iter()
                    .filter(|(rho, hat)| r.contains_rect(rho) && hat.strictly_contains(&r))
                    .map(|(rho, _)| rho.clone())
                    .collect();
                hits.dedup_by(|x, y| x == y);
                hits
            };
            if pick(&literal) != pick(&onestep) {
                mismatches += 1;
            }
        }
        table.row(vec![
            s.to_string(),
            rects.len().to_string(),
            literal.len().to_string(),
            onestep.len().to_string(),
            n_queries.to_string(),
            mismatches.to_string(),
        ]);
    }
    table
}

/// A2 — orthogonal-search backend: kd-tree vs multi-level range tree vs
/// brute force, on the 3-dim lifted points of the threshold structure.
pub fn a2_backend(scale: Scale) -> Table {
    let mut table = Table::new(
        "A2 — search backend on lifted points (d=1 ⇒ 3 dims)",
        &[
            "points", "kd build", "kd/q", "rt build", "rt/q", "rt bytes", "brute/q",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xA2);
    let sweep = if scale.quick {
        vec![10_000usize]
    } else {
        vec![10_000usize, 50_000, 200_000]
    };
    for n in sweep {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let lo = rng.gen_range(0.0..100.0);
                let hi = lo + rng.gen_range(0.0..20.0);
                vec![lo, hi, rng.gen_range(0.0..1.0)]
            })
            .collect();
        let (kd, t_kd) = time(|| KdTree::build(3, pts.clone()));
        let (rt, t_rt) = time(|| RangeTree::build(3, pts.clone()));
        let brute = BruteForce::build(3, pts.clone());
        let mut q_kd = Vec::new();
        let mut q_rt = Vec::new();
        let mut q_b = Vec::new();
        for _ in 0..scale.queries() {
            let a = rng.gen_range(0.0..80.0);
            let region = Region::all(3)
                .with_lo(0, a, false)
                .with_hi(1, a + 15.0, false)
                .with_lo(2, 0.7, false);
            let mut out = Vec::new();
            let (_, d) = time(|| kd.report(&region, &mut out));
            q_kd.push(d);
            out.clear();
            let (_, d) = time(|| rt.report(&region, &mut out));
            q_rt.push(d);
            out.clear();
            let (_, d) = time(|| brute.report(&region, &mut out));
            q_b.push(d);
        }
        table.row(vec![
            n.to_string(),
            fmt_duration(t_kd),
            fmt_duration(median_duration(q_kd)),
            fmt_duration(t_rt),
            fmt_duration(median_duration(q_rt)),
            fmt_bytes(rt.memory_bytes()),
            fmt_duration(median_duration(q_b)),
        ]);
    }
    table
}

/// A3 — lazy tombstoning vs the paper's eager group deletion in the
/// threshold query loop.
pub fn a3_lazy_vs_eager(scale: Scale) -> Table {
    let mut table = Table::new(
        "A3 — query enumeration strategy: lazy tombstones vs eager group deletion",
        &["N", "avg OUT", "lazy/q", "eager/q", "disagreements"],
    );
    let sweep = if scale.quick {
        vec![500usize]
    } else {
        vec![1000usize, 4000, 16000]
    };
    for n in sweep {
        let wl = clustered_workload(n, 300, 1, 0xA3);
        let params = PtileBuildParams::default().with_rect_budget(496);
        let mut idx = PtileThresholdIndex::build(&wl.synopses, params);
        let queries = ptile_queries(&wl, scale.queries(), 15, idx.margin(), 0xA3 + 1);
        let mut t_lazy = Vec::new();
        let mut t_eager = Vec::new();
        let mut out_total = 0usize;
        let mut disagreements = 0usize;
        for q in &queries {
            let (mut lazy, d) = time(|| idx.query(&q.rect, q.a));
            t_lazy.push(d);
            let (mut eager, d) = time(|| idx.query_eager(&q.rect, q.a));
            t_eager.push(d);
            out_total += lazy.len();
            lazy.sort_unstable();
            eager.sort_unstable();
            if lazy != eager {
                disagreements += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            format!("{:.1}", out_total as f64 / queries.len() as f64),
            fmt_duration(median_duration(t_lazy)),
            fmt_duration(median_duration(t_eager)),
            disagreements.to_string(),
        ]);
    }
    table
}

/// A4 — the ε ↔ space tradeoff: rectangle budget sweep.
pub fn a4_eps_budget(scale: Scale) -> Table {
    let mut table = Table::new(
        "A4 — ε vs space: per-dataset rectangle budget sweep (threshold index)",
        &[
            "budget",
            "sample",
            "provable ε",
            "lifted",
            "bytes",
            "index/q",
            "precision",
        ],
    );
    let n = if scale.quick { 300 } else { 1000 };
    let wl = mixed_workload(n, 2000, 1, 0xA4);
    let queries = ptile_queries(&wl, scale.queries(), 10, 0.3, 0xA4 + 1);
    for budget in [28usize, 120, 496, 2016, 8128] {
        let params = PtileBuildParams::default().with_rect_budget(budget);
        let (idx, _build) = time(|| PtileThresholdIndex::build(&wl.synopses, params));
        let mut t_q = Vec::new();
        let (mut exact, mut reported) = (0usize, 0usize);
        for q in &queries {
            let (hits, d) = time(|| idx.query(&q.rect, q.a));
            t_q.push(d);
            let check = check_ptile(
                &wl.sets,
                &q.rect,
                Interval::new(q.a, 1.0),
                &hits,
                idx.slack(),
            );
            exact += check.exact_out;
            reported += check.reported;
        }
        // Sample size implied by the budget for d=1: s(s+1)/2 <= budget.
        let sample = (((8.0 * budget as f64 + 1.0).sqrt() - 1.0) / 2.0).floor() as usize;
        table.row(vec![
            budget.to_string(),
            sample.to_string(),
            format!("{:.3}", idx.eps()),
            idx.lifted_points().to_string(),
            fmt_bytes(idx.memory_bytes()),
            fmt_duration(median_duration(t_q)),
            format!("{:.3}", exact as f64 / reported.max(1) as f64),
        ]);
    }
    table
}

/// A5 — synopsis families at comparable byte budgets: measured δ and
/// downstream precision.
pub fn a5_synopsis_families(scale: Scale) -> Table {
    let mut table = Table::new(
        "A5 — synopsis families at ~equal byte budget (federated threshold index)",
        &["synopsis", "bytes/ds", "measured δ", "missed", "precision"],
    );
    let n = if scale.quick { 150 } else { 400 };
    let wl = mixed_workload(n, 1500, 1, 0xA5);
    let mut rng = StdRng::seed_from_u64(0xA5 + 1);
    let queries = ptile_queries(&wl, scale.queries(), 12, 0.2, 0xA5 + 2);

    // ~2 KiB per dataset for every family.
    let families: Vec<(&str, Vec<Box<dyn PercentileSynopsis>>)> = vec![
        (
            "uniform sample (64 pts)",
            wl.sets
                .iter()
                .map(|p| {
                    Box::new(UniformSampleSynopsis::from_points(p, 64, 0.001, &mut rng))
                        as Box<dyn PercentileSynopsis>
                })
                .collect(),
        ),
        (
            "equi-depth hist (256)",
            wl.sets
                .iter()
                .map(|p| {
                    Box::new(EquiDepthHistogram::from_points(p, 256)) as Box<dyn PercentileSynopsis>
                })
                .collect(),
        ),
        (
            "equi-width grid (128)",
            wl.sets
                .iter()
                .map(|p| {
                    Box::new(GridHistogram::from_points(p, 128)) as Box<dyn PercentileSynopsis>
                })
                .collect(),
        ),
        (
            "gaussian mixture (8)",
            wl.sets
                .iter()
                .map(|p| {
                    Box::new(GaussianMixtureSynopsis::fit(p, 8, 10, &mut rng))
                        as Box<dyn PercentileSynopsis>
                })
                .collect(),
        ),
    ];
    for (name, synopses) in families {
        let deltas: Vec<f64> = synopses
            .iter()
            .zip(&wl.sets)
            .map(|(s, pts)| {
                (1.5 * error::estimate_percentile_error(s, pts, 60, &mut rng) + 0.01)
                    .clamp(0.01, 0.6)
            })
            .collect();
        let measured = deltas.iter().fold(0.0f64, |a, &b| a.max(b));
        let bytes = synopses.iter().map(|s| s.memory_bytes()).sum::<usize>() / n;
        let params = PtileBuildParams::default().with_rect_budget(496);
        let idx = PtileThresholdIndex::build_with_deltas(&synopses, Some(&deltas), params);
        let (mut missed, mut exact, mut reported) = (0usize, 0usize, 0usize);
        for q in &queries {
            let hits = idx.query(&q.rect, q.a);
            let check = check_ptile(
                &wl.sets,
                &q.rect,
                Interval::new(q.a, 1.0),
                &hits,
                idx.slack(),
            );
            missed += check.missed.len();
            exact += check.exact_out;
            reported += check.reported;
        }
        table.row(vec![
            name.to_string(),
            fmt_bytes(bytes),
            format!("{measured:.4}"),
            missed.to_string(),
            format!("{:.3}", exact as f64 / reported.max(1) as f64),
        ]);
    }
    table
}
