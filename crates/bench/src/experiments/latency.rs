//! E19 — per-stage serving latency under a replayed request mix.
//!
//! Replays a seeded [`RequestStreamSpec`] mix (singles and batches)
//! against a live loopback server, then asks the server itself for the
//! numbers: the `Metrics` wire op returns the lock-free per-stage
//! histograms (decode, admission-queue wait, execute, response write,
//! plus the engine's routing and per-scatter-unit timers) that the
//! request path recorded while serving. The table is the p50/p99/p999
//! of each stage straight from those snapshots — the observability the
//! telemetry layer exists to provide, exercised end to end. The smoke
//! run asserts the histograms are non-empty and quantile-monotone, so
//! CI fails if a stage silently stops recording.

use super::Scale;
use crate::table::{fmt_duration, Table};
use dds_core::framework::Repository;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_server::{DdsClient, DdsServer, ServerConfig};
use dds_workload::{RepoSpec, RequestStreamSpec};
use std::time::Duration;

/// E19 — replay a request mix, then read the server's own per-stage
/// latency histograms back through the `Metrics` op.
pub fn e19_stage_latency(scale: Scale) -> Table {
    let mut table = Table::new(
        "E19 — per-stage serving latency (Metrics op: lock-free histograms)",
        &["stage", "samples", "p50", "p99", "p999"],
    );
    let (n_datasets, requests) = if scale.smoke {
        (12, 60)
    } else if scale.quick {
        (24, 300)
    } else {
        (48, 2000)
    };

    let spec = RepoSpec::mixed(n_datasets, 60, 1, 0xE19);
    let mut engine = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    for shard in spec.shards(3) {
        engine.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
    }
    // Zero threshold so the replay also populates the slow-query ring —
    // the trace row below then reports real records, not an empty log.
    let cfg = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        slow_log_capacity: 16,
        ..ServerConfig::default()
    };
    let server = DdsServer::serve(engine, "127.0.0.1:0", cfg).expect("bind loopback");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");

    // The replay mix: popular shapes with repeats (cache hits), replayed
    // as singles plus one whole-stream batch so both execution paths
    // land in the histograms.
    let exprs = RequestStreamSpec::new(requests, 0xE19)
        .with_shapes(6)
        .exprs(&spec);
    for expr in &exprs {
        client.query(expr).expect("replayed query").expect("hits");
    }
    client.query_batch(&exprs).expect("replayed batch");

    let report = client.metrics().expect("metrics op");
    for (stage, snap) in report.stages() {
        let total = snap.total();
        assert!(total > 0, "stage `{stage}` recorded no samples");
        let p50 = snap.quantile(0.5).expect("p50");
        let p99 = snap.quantile(0.99).expect("p99");
        let p999 = snap.quantile(0.999).expect("p999");
        assert!(
            p50 <= p99 && p99 <= p999,
            "stage `{stage}` quantiles must be monotone ({p50} {p99} {p999})"
        );
        table.row(vec![
            stage.to_string(),
            total.to_string(),
            fmt_duration(Duration::from_nanos(p50)),
            fmt_duration(Duration::from_nanos(p99)),
            fmt_duration(Duration::from_nanos(p999)),
        ]);
    }

    // The slow-query ring saw the replay (threshold 0 traces everything);
    // surface how much of the tail it retained.
    let traces = &report.slow_queries;
    assert!(!traces.is_empty(), "zero threshold must trace requests");
    table.row(vec![
        "slow-query ring".into(),
        traces.len().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    server.shutdown();
    table
}
