//! E17 — seeded fault soak: byte-identical answers through chaos.
//!
//! The self-healing contract at experiment scale: a served catalog is
//! driven **through a chaos proxy** ([`ChaosProxy`]) that tears writes at
//! exact byte offsets, resets connections mid-frame, stalls reads and
//! writes, trickles bytes, and delays connects — every fault derived
//! from a seed, so any red row reproduces exactly. A [`DdsClient`] with
//! a [`RetryPolicy`] ingests the catalog, answers a request stream, and
//! churns a split + merge through that chaos, while an in-process mirror
//! applies the same logical ops cleanly. Every row asserts **`=mirror`**:
//! the surviving answers are byte-identical to the mirror's, the catalog
//! shape matches (no duplicate ingest despite retried `AddShard`s — the
//! `request_id` dedup window at work), the server never reaped an
//! executor panic, and a post-soak `stats` round trip on a **fresh,
//! clean** connection succeeds — the server is still standing.
//!
//! Re-run a single seed locally by copying it from the table into
//! `FaultScheduleSpec::seeded(seed)`; the whole fault sequence replays.

use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::framework::Repository;
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::{GlobalId, ShardedEngine};
use dds_server::{
    ChaosProxy, ClientConfig, DdsClient, DdsServer, FaultPlan, RetryPolicy, ServerConfig,
};
use dds_workload::{FaultScheduleSpec, RepoSpec, RequestStreamSpec};
use std::time::Duration;

/// E17 — the fault soak: a seed sweep of chaos-proxied workloads, each
/// asserted byte-identical to its clean in-process mirror.
pub fn e17_fault_soak(scale: Scale) -> Table {
    let mut table = Table::new(
        "E17 — fault soak (chaos proxy + retrying client; answers pinned to a clean mirror)",
        &[
            "seed", "requests", "conns", "retries", "deduped", "reaped", "panics", "total",
            "=mirror",
        ],
    );
    let seeds: Vec<u64> = if scale.smoke {
        (0..3).collect()
    } else if scale.quick {
        (0..8).collect()
    } else {
        (0..16).collect()
    };
    let n_requests = if scale.smoke {
        8
    } else if scale.quick {
        12
    } else {
        24
    };
    for seed in seeds {
        let (outcome, t) = time(|| soak_one_seed(seed, n_requests));
        table.row(vec![
            format!("{seed:#x}"),
            n_requests.to_string(),
            outcome.connections.to_string(),
            outcome.retries.to_string(),
            outcome.deduped.to_string(),
            outcome.reaped.to_string(),
            outcome.panics.to_string(),
            fmt_duration(t),
            "✓".to_string(),
        ]);
    }
    table
}

/// What one seed's soak observed (already asserted healthy).
struct SoakOutcome {
    connections: u64,
    retries: u64,
    deduped: u64,
    reaped: u64,
    panics: u64,
}

fn params() -> (PtileBuildParams, PrefBuildParams) {
    (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
}

/// Runs the whole ingest → query → churn → verify cycle for one seed,
/// panicking (with the seed in the message) on any divergence.
fn soak_one_seed(seed: u64, n_requests: usize) -> SoakOutcome {
    // Heavier than the 400‰ default: a soak exists to see the retry
    // loop actually fire, so most dialed connections carry a fault.
    let schedule = FaultScheduleSpec {
        seed,
        fault_per_mille: 850,
    };
    let plan = FaultPlan::seeded(schedule.seed).with_fault_per_mille(schedule.fault_per_mille);

    let (ptile, pref) = params();
    let mut mirror = ShardedEngine::new(&[1], ptile, pref);
    let served = {
        let (ptile, pref) = params();
        ShardedEngine::new(&[1], ptile, pref)
    };
    let server = DdsServer::serve(served, "127.0.0.1:0", ServerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: bind: {e}"));
    let proxy = ChaosProxy::spawn(server.local_addr(), plan)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: proxy: {e}"));

    let retry = RetryPolicy {
        deadline: Duration::from_secs(20),
        max_attempts: 16,
        base_backoff: Duration::from_millis(5),
        jitter_seed: seed,
    };
    let mut client = DdsClient::connect_with(proxy.local_addr(), ClientConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: connect: {e}"))
        .with_retry(retry);

    // Ingest through the chaos, mirroring each *logical* ingest exactly
    // once. Retries across calls reuse the same request_id, so however
    // many times the bytes hit the server, the shard lands once.
    let spec = RepoSpec::mixed(12, 40, 1, seed.wrapping_add(0xE17));
    let serial = BuildOptions::serial();
    for (i, shard) in spec.shards(3).into_iter().enumerate() {
        let repo = Repository::from_point_sets(shard.sets);
        let request_id = 0xE17_0000 + i as u64 + (seed << 32);
        let served_idx = loop {
            match client.add_shard_with_id(request_id, &repo, &shard.global_ids) {
                Ok(idx) => break idx,
                // Budget exhausted under heavy chaos: the id makes the
                // whole call safe to re-issue.
                Err(e) => assert!(e.is_transient() || is_deadline(&e), "seed {seed:#x}: {e}"),
            }
        };
        let mirror_idx = mirror.add_shard_opts(&repo, &shard.global_ids, &serial);
        assert_eq!(served_idx, mirror_idx, "seed {seed:#x}: shard index");
    }

    // The request stream: every surviving answer byte-identical to the
    // mirror, MissingRank errors included.
    let exprs = RequestStreamSpec::new(n_requests, seed)
        .with_missing_rank_every(5, 9)
        .with_faults(schedule)
        .exprs(&spec);
    for (j, e) in exprs.iter().enumerate() {
        let got = query_until_answered(&mut client, e, seed);
        assert_eq!(got, mirror.query(e), "seed {seed:#x}: expr {j}");
    }

    // Live churn through the chaos: split shard 0, then merge the new
    // shard back. Lifecycle ops carry no payload, so a duplicate from a
    // lost answer gets a typed rejection — the catalog shape tells
    // whether the op landed.
    let mut ids = mirror.global_ids(0).to_vec();
    ids.sort_unstable();
    let move_ids = ids.split_off(ids.len() / 2);
    ensure_split(&mut client, 0, &move_ids, 4, seed);
    mirror
        .try_split_shard_opts(0, &move_ids, &serial)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: mirror split: {e}"));
    ensure_merge(&mut client, 3, 0, 3, seed);
    mirror
        .try_merge_shards_opts(3, 0, &serial)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: mirror merge: {e}"));
    for (j, e) in exprs.iter().enumerate() {
        let got = query_until_answered(&mut client, e, seed);
        assert_eq!(got, mirror.query(e), "seed {seed:#x}: post-churn expr {j}");
    }
    let retries = client.retries();
    drop(client);
    proxy.shutdown();

    // The server must still be standing: a fresh, clean connection
    // answers stats, and the counters prove what the soak survived.
    let mut fresh = DdsClient::connect(server.local_addr())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: post-soak connect: {e}"));
    let stats = fresh
        .stats()
        .unwrap_or_else(|e| panic!("seed {seed:#x}: post-soak stats: {e}"));
    assert_eq!(stats.executor_panics, 0, "seed {seed:#x}: panics");
    assert_eq!(
        stats.n_shards,
        mirror.n_shards() as u64,
        "seed {seed:#x}: shard count (duplicate ingest?)"
    );
    assert_eq!(
        stats.n_datasets,
        mirror.n_datasets() as u64,
        "seed {seed:#x}: dataset count (duplicate ingest?)"
    );
    let outcome = SoakOutcome {
        connections: stats.sessions_opened,
        retries,
        deduped: stats.requests_deduped,
        reaped: stats.sessions_reaped,
        panics: stats.executor_panics,
    };
    server.shutdown();
    outcome
}

fn is_deadline(e: &dds_server::ClientError) -> bool {
    matches!(e, dds_server::ClientError::DeadlineExceeded { .. })
}

/// Queries until the *transport* yields an answer (hit list or engine
/// error — both compare against the mirror byte-for-byte).
fn query_until_answered(
    client: &mut DdsClient,
    e: &dds_core::framework::LogicalExpr,
    seed: u64,
) -> Result<Vec<GlobalId>, dds_core::engine::EngineError> {
    loop {
        match client.query(e) {
            Ok(answer) => return answer,
            Err(err) => assert!(
                err.is_transient() || is_deadline(&err),
                "seed {seed:#x}: non-retryable query failure: {err}"
            ),
        }
    }
}

/// Drives a split until the catalog holds `want_shards` shards: either
/// the call succeeds, or a duplicate of an already-applied split is
/// rejected — in which case the (retried, hence reliable) stats call
/// proves the shape.
fn ensure_split(
    client: &mut DdsClient,
    shard: usize,
    move_ids: &[GlobalId],
    want_shards: u64,
    seed: u64,
) {
    loop {
        match client.split_shard(shard, move_ids) {
            Ok(_) => return,
            Err(_) => {
                let stats = match client.stats() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if stats.n_shards == want_shards {
                    return;
                }
                assert_eq!(
                    stats.n_shards,
                    want_shards - 1,
                    "seed {seed:#x}: split left an unexpected shard count"
                );
            }
        }
    }
}

/// The merge analogue of [`ensure_split`].
fn ensure_merge(client: &mut DdsClient, a: usize, b: usize, want_shards: u64, seed: u64) {
    loop {
        match client.merge_shards(a, b) {
            Ok(_) => return,
            Err(_) => {
                let stats = match client.stats() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if stats.n_shards == want_shards {
                    return;
                }
                assert_eq!(
                    stats.n_shards,
                    want_shards + 1,
                    "seed {seed:#x}: merge left an unexpected shard count"
                );
            }
        }
    }
}
