//! E14 — sharded scatter/gather throughput and cache effectiveness.
//!
//! The service story: a catalog too large for one index is split into
//! repository shards, one [`MixedQueryEngine`] each, and a
//! [`ShardedEngine`] scatters every query over all of them
//! (`dds_pool::par_map_with` on (expression, shard) units) and gathers
//! stable global ids. This experiment sweeps shard count × thread count
//! against a single unsharded engine on the same datasets and batch:
//!
//! * **speedup** — unsharded sequential one-at-a-time time over this
//!   row's sharded batch time;
//! * **`=unsharded`** — asserts the sharded answers are bit-identical to
//!   the unsharded engine's (as sorted global ids) — the
//!   `tests/shard_equivalence.rs` contract at experiment scale. Both
//!   sides anchor the φ-split to the catalog size
//!   (`with_phi_datasets(n)`), and shard engines seed per-dataset
//!   sampling by global id, so the assertion is sound even when the
//!   rectangle budget forces real sampling;
//! * **cache hit-rate columns** — each shard's cross-call [`MaskCache`]
//!   survives between batches: the *cold* column is the hit rate of the
//!   first (timed) batch, the *warm* column the rate of an identical
//!   follow-up batch, which a read-mostly catalog serves almost entirely
//!   from cache.

use super::setup::{mixed_workload, ptile_queries};
use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::engine::MixedQueryEngine;
use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::{GlobalId, ShardedEngine};
use dds_workload::RepoSpec;

/// Distinct query shapes; batches cycle through them so the cross-call
/// caches have realistic repetition to exploit.
const DISTINCT_SHAPES: usize = 24;

fn bench_params() -> PtileBuildParams {
    PtileBuildParams::default().with_rect_budget(496)
}

fn pref_params() -> PrefBuildParams {
    PrefBuildParams::exact_centralized().with_eps(0.05)
}

/// The same mixed DNF shapes E12 uses, anchored on the workload data.
fn expression_pool(wl: &super::setup::Workload, margin: f64) -> Vec<LogicalExpr> {
    let qs = ptile_queries(wl, DISTINCT_SHAPES, 10, margin, 0xE14 + 1);
    qs.iter()
        .enumerate()
        .map(|(i, q)| {
            let score_bar = 20.0 + 60.0 * (i as f64 / DISTINCT_SHAPES as f64);
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile(q.rect.clone(), q.theta)),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, score_bar)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(q.rect.clone(), q.a)),
            ])
        })
        .collect()
}

/// E14 — sharded scatter/gather throughput: shards × threads sweep with a
/// speedup column against the sequential unsharded baseline, an
/// `=unsharded` determinism assertion and cold/warm cache hit rates.
pub fn e14_sharded_throughput(scale: Scale) -> Table {
    let mut table = Table::new(
        "E14 — sharded scatter/gather throughput (ShardedEngine over dds-pool; cross-call mask caches)",
        &[
            "N",
            "shards",
            "threads",
            "batch",
            "total",
            "/query",
            "speedup",
            "=unsharded",
            "hit% cold",
            "hit% warm",
        ],
    );
    let n = if scale.smoke {
        300
    } else if scale.quick {
        1000
    } else {
        4000
    };
    let batch = if scale.smoke {
        32
    } else if scale.quick {
        128
    } else {
        512
    };
    let spec = RepoSpec::mixed(n, 300, 1, 0xE14);
    let wl = mixed_workload(n, 300, 1, 0xE14);
    let unsharded_engine = MixedQueryEngine::build(
        &Repository::from_point_sets(wl.sets.clone()),
        &[1],
        bench_params().with_phi_datasets(n),
        pref_params(),
    );
    let pool = expression_pool(&wl, unsharded_engine.ptile_slack() / 2.0);
    let exprs: Vec<LogicalExpr> = (0..batch).map(|i| pool[i % pool.len()].clone()).collect();
    // Baseline: the unsharded engine, queried one-at-a-time (what a
    // single-index service does), canonicalized to sorted global ids.
    let (baseline, t_seq) = time(|| {
        exprs
            .iter()
            .map(|e| {
                e_to_ids(
                    unsharded_engine
                        .query(e)
                        .expect("rank 1 is indexed in this workload"),
                )
            })
            .collect::<Vec<_>>()
    });
    let shard_counts: &[usize] = if scale.smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let thread_counts: &[usize] = if scale.smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    for &k in shard_counts {
        // One partition + one service build per shard count; each thread
        // row restores cold-cache conditions by invalidating every
        // shard's (generation-tagged) cache instead of rebuilding.
        let mut svc = ShardedEngine::new(&[1], bench_params().with_phi_datasets(n), pref_params());
        for shard in spec.shards(k) {
            svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
        }
        for &threads in thread_counts {
            for s in 0..svc.n_shards() {
                svc.shard_engine(s).mask_cache().invalidate();
            }
            let (h0, m0) = svc.cache_stats();
            let opts = BuildOptions::with_threads(threads);
            let (answers, t_cold) = time(|| svc.query_batch_opts(&exprs, &opts));
            let (h1, m1) = svc.cache_stats();
            let (warm_answers, _) = time(|| svc.query_batch_opts(&exprs, &opts));
            let (h2, m2) = svc.cache_stats();
            let (h_cold, m_cold) = (h1 - h0, m1 - m0);
            let (h_warm, m_warm) = (h2 - h1, m2 - m1);
            for (i, answer) in answers.iter().enumerate() {
                assert_eq!(
                    answer.as_ref().expect("no missing ranks in this workload"),
                    &baseline[i],
                    "sharded answers must match unsharded (shards {k}, threads {threads}, expr {i})"
                );
            }
            assert_eq!(warm_answers, answers, "warm repeat must be identical");
            let speedup = t_seq.as_secs_f64() / t_cold.as_secs_f64().max(1e-12);
            table.row(vec![
                n.to_string(),
                k.to_string(),
                threads.to_string(),
                batch.to_string(),
                fmt_duration(t_cold),
                fmt_duration(t_cold / batch as u32),
                format!("{speedup:.2}x"),
                "✓".to_string(),
                fmt_hit_rate(h_cold, m_cold),
                fmt_hit_rate(h_warm, m_warm),
            ]);
        }
    }
    table
}

/// Canonical answer form: ascending global ids.
fn e_to_ids(hits: Vec<usize>) -> Vec<GlobalId> {
    let mut ids: Vec<GlobalId> = hits.into_iter().map(|j| j as GlobalId).collect();
    ids.sort_unstable();
    ids
}

fn fmt_hit_rate(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}
