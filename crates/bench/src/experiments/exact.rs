//! E4 — the exact 1-d CPtile structure (Theorem C.5).

use super::setup::mixed_workload;
use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::framework::{Interval, Repository};
use dds_core::ptile::ExactCPtile1D;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E4 — exactness plus query scaling against brute force.
pub fn e4_exact_1d(scale: Scale) -> Table {
    let mut table = Table::new(
        "E4 — exact CPtile in R¹, θ fixed (Thm C.5): exact answers, output-sensitive queries",
        &[
            "N",
            "total pts",
            "build",
            "index/q",
            "brute/q",
            "mismatches",
            "avg OUT",
        ],
    );
    let theta = Interval::new(0.3, 0.7);
    for n in scale.n_sweep() {
        let wl = mixed_workload(n, 200, 1, 0xE4);
        let repo = Repository::from_point_sets(wl.sets.clone());
        let (idx, build) = time(|| ExactCPtile1D::build(&repo, theta));
        let mut rng = StdRng::seed_from_u64(0xE4 + 1);
        let mut t_idx = Vec::new();
        let mut t_brute = Vec::new();
        let mut mismatches = 0usize;
        let mut out_total = 0usize;
        for _ in 0..scale.queries() {
            let lo: f64 = rng.gen_range(0.0..80.0);
            let hi: f64 = lo + rng.gen_range(5.0..20.0);
            let (mut got, d) = time(|| idx.query(lo, hi));
            t_idx.push(d);
            let (want, d) = time(|| {
                wl.sets
                    .iter()
                    .enumerate()
                    .filter(|(_, pts)| {
                        let cnt = pts.iter().filter(|p| lo <= p[0] && p[0] <= hi).count();
                        theta.contains(cnt as f64 / pts.len() as f64)
                    })
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>()
            });
            t_brute.push(d);
            got.sort_unstable();
            if got != want {
                mismatches += 1;
            }
            out_total += got.len();
        }
        table.row(vec![
            n.to_string(),
            repo.total_points().to_string(),
            fmt_duration(build),
            fmt_duration(median_duration(t_idx)),
            fmt_duration(median_duration(t_brute)),
            mismatches.to_string(),
            format!("{:.1}", out_total as f64 / scale.queries() as f64),
        ]);
    }
    table
}
