//! E1 / E2 / E3 / E5 — the Ptile query-time and guarantee experiments
//! (Theorems 4.4, 4.11, C.8).

use super::setup::{clustered_workload, mixed_workload, ptile_queries};
use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::baseline::{LinearScanPtile, SynopsisScanPtile};
use dds_core::framework::{Interval, Repository};
use dds_core::guarantee::{check_ptile, check_ptile_conjunction};
use dds_core::ptile::{PtileBuildParams, PtileMultiIndex, PtileRangeIndex, PtileThresholdIndex};

fn bench_params() -> PtileBuildParams {
    // Moderate per-dataset rectangle budget; the empirical sampling margin
    // (validated by E2) keeps bands useful at this budget.
    // Budget 496 ⇒ 31 grid coordinates per dimension; with the decoupled
    // 512-point weight sample the measured per-dataset budgets land around
    // ε_i ≈ 0.18 (sampling ≈ 0.11 + grid gaps ≈ 0.07) — provable margins,
    // no empirical override needed.
    PtileBuildParams::default().with_rect_budget(496)
}

/// E1 — Theorem 4.4 shape: index query time grows polylogarithmically in N
/// while both scan baselines grow linearly.
pub fn e1_threshold_query_scaling(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1 — Ptile threshold: query time vs N (Thm 4.4 vs Ω(N) baselines; d=1)",
        &[
            "N",
            "build",
            "lifted",
            "index/q",
            "per-out",
            "exact-scan/q",
            "fainder/q",
            "avg OUT",
        ],
    );
    for n in scale.n_sweep() {
        let wl = clustered_workload(n, 400, 1, 0xE1);
        let (idx, build) = time(|| PtileThresholdIndex::build(&wl.synopses, bench_params()));
        let queries = ptile_queries(&wl, scale.queries(), 10, idx.margin(), 0xE1 + 1);
        let repo = Repository::from_point_sets(wl.sets.clone());
        let scan = LinearScanPtile::build(&repo);
        let fainder = SynopsisScanPtile::new(wl.synopses.clone(), 0.0);

        let mut t_idx = Vec::new();
        let mut t_scan = Vec::new();
        let mut t_fainder = Vec::new();
        let mut out_total = 0usize;
        for q in &queries {
            let (hits, d) = time(|| idx.query(&q.rect, q.a));
            t_idx.push(d);
            out_total += hits.len();
            let theta = Interval::new(q.a, 1.0);
            let (_, d) = time(|| scan.query(&q.rect, theta));
            t_scan.push(d);
            let (_, d) = time(|| fainder.query(&q.rect, theta));
            t_fainder.push(d);
        }
        let avg_out = out_total as f64 / queries.len() as f64;
        let per_out = median_duration(t_idx.clone()).as_secs_f64() * 1e6 / (1.0 + avg_out);
        table.row(vec![
            n.to_string(),
            fmt_duration(build),
            idx.lifted_points().to_string(),
            fmt_duration(median_duration(t_idx)),
            format!("{per_out:.1}us"),
            fmt_duration(median_duration(t_scan)),
            fmt_duration(median_duration(t_fainder)),
            format!("{avg_out:.1}"),
        ]);
    }
    table
}

/// E2 — Theorem 4.4 guarantee: recall = 1 and band compliance, centralized.
pub fn e2_threshold_guarantees(scale: Scale) -> Table {
    let mut table = Table::new(
        "E2 — Ptile threshold guarantees (Thm 4.4): recall and ε-band, centralized",
        &[
            "N",
            "d",
            "queries",
            "missed",
            "band viol.",
            "exact out",
            "reported",
            "precision",
        ],
    );
    for (n, d) in [(2000usize, 1usize), (1000, 2)] {
        let n = if scale.quick { n / 4 } else { n };
        let wl = mixed_workload(n, 400, d, 0xE2);
        let idx = PtileThresholdIndex::build(&wl.synopses, bench_params());
        let queries = ptile_queries(&wl, scale.queries(), 12, idx.margin(), 0xE2 + 1);
        let slack = idx.slack();
        let mut missed = 0usize;
        let mut viol = 0usize;
        let mut exact = 0usize;
        let mut reported = 0usize;
        for q in &queries {
            let hits = idx.query(&q.rect, q.a);
            let check = check_ptile(&wl.sets, &q.rect, Interval::new(q.a, 1.0), &hits, slack);
            missed += check.missed.len();
            viol += check.out_of_band.len();
            exact += check.exact_out;
            reported += check.reported;
        }
        table.row(vec![
            n.to_string(),
            d.to_string(),
            queries.len().to_string(),
            missed.to_string(),
            viol.to_string(),
            exact.to_string(),
            reported.to_string(),
            format!("{:.3}", exact as f64 / reported.max(1) as f64),
        ]);
    }
    table
}

/// E3 — Theorem 4.11: range predicates, query scaling plus guarantees.
pub fn e3_range_queries(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3 — Ptile range predicates (Thm 4.11): scaling and two-sided band",
        &[
            "N",
            "build",
            "index/q",
            "exact-scan/q",
            "missed",
            "band viol.",
            "precision",
        ],
    );
    for n in scale.n_sweep() {
        let wl = clustered_workload(n, 400, 1, 0xE3);
        let (idx, build) = time(|| PtileRangeIndex::build(&wl.synopses, bench_params()));
        let queries = ptile_queries(&wl, scale.queries(), 10, idx.margin(), 0xE3 + 1);
        let repo = Repository::from_point_sets(wl.sets.clone());
        let scan = LinearScanPtile::build(&repo);
        let slack = idx.slack();
        let mut t_idx = Vec::new();
        let mut t_scan = Vec::new();
        let (mut missed, mut viol, mut exact, mut reported) = (0usize, 0usize, 0usize, 0usize);
        for q in &queries {
            let (hits, d) = time(|| idx.query(&q.rect, q.theta));
            t_idx.push(d);
            let (_, d) = time(|| scan.query(&q.rect, q.theta));
            t_scan.push(d);
            let check = check_ptile(&wl.sets, &q.rect, q.theta, &hits, slack);
            missed += check.missed.len();
            viol += check.out_of_band.len();
            exact += check.exact_out;
            reported += check.reported;
        }
        table.row(vec![
            n.to_string(),
            fmt_duration(build),
            fmt_duration(median_duration(t_idx)),
            fmt_duration(median_duration(t_scan)),
            missed.to_string(),
            viol.to_string(),
            format!("{:.3}", exact as f64 / reported.max(1) as f64),
        ]);
    }
    table
}

/// E5 — Theorem C.8: conjunctions of two range predicates.
pub fn e5_multi_predicates(scale: Scale) -> Table {
    let mut table = Table::new(
        "E5 — logical expressions, m = 2 conjunctions (Thm C.8)",
        &[
            "N",
            "build",
            "lifted",
            "index/q",
            "missed",
            "band viol.",
            "avg OUT",
        ],
    );
    let sweep = if scale.quick {
        vec![250, 500]
    } else {
        vec![500, 1000, 2000, 4000]
    };
    for n in sweep {
        let wl = clustered_workload(n, 300, 1, 0xE5);
        let params = PtileBuildParams::default()
            .with_rect_budget(4096) // per-slot budget 64 after the m-th root
            .with_empirical_eps(0.2);
        let (idx, build) = time(|| PtileMultiIndex::build(&wl.synopses, 2, params));
        let qs = ptile_queries(&wl, scale.queries(), 20, idx.margin(), 0xE5 + 1);
        let slack = idx.slack();
        let mut t_idx = Vec::new();
        let (mut missed, mut viol, mut out_total) = (0usize, 0usize, 0usize);
        let mut n_queries = 0usize;
        for pair in qs.chunks(2) {
            if pair.len() < 2 {
                break;
            }
            let preds = vec![
                (pair[0].rect.clone(), pair[0].theta),
                (pair[1].rect.clone(), pair[1].theta),
            ];
            let (hits, d) = time(|| idx.query(&preds));
            t_idx.push(d);
            out_total += hits.len();
            n_queries += 1;
            let check = check_ptile_conjunction(&wl.sets, &preds, &hits, slack);
            missed += check.missed.len();
            viol += check.out_of_band.len();
        }
        table.row(vec![
            n.to_string(),
            fmt_duration(build),
            idx.lifted_points().to_string(),
            fmt_duration(median_duration(t_idx)),
            missed.to_string(),
            viol.to_string(),
            format!("{:.1}", out_total as f64 / n_queries.max(1) as f64),
        ]);
    }
    table
}
