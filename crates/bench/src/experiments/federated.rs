//! E11 — the federated error-transfer experiment: the end-to-end ε + 2δ
//! band tracks the measured synopsis error as histogram resolution varies.

use super::setup::{mixed_workload, ptile_queries};
use super::Scale;
use crate::table::Table;
use dds_core::framework::Interval;
use dds_core::guarantee::check_ptile;
use dds_core::pool::BuildOptions;
use dds_core::ptile::{PtileBuildParams, PtileThresholdIndex};
use dds_synopsis::{error, EquiDepthHistogram};

/// E11 — δ sweep via histogram resolution (Lemma 2.1 / Theorem 4.4 in the
/// federated setting).
pub fn e11_federated_delta_sweep(scale: Scale) -> Table {
    let mut table = Table::new(
        "E11 — federated FPtile: measured δ vs end-to-end guarantee (equi-depth histograms)",
        &[
            "bins/dim",
            "measured δ",
            "band ±",
            "missed",
            "band viol.",
            "exact out",
            "reported",
            "precision",
        ],
    );
    let n = if scale.quick { 200 } else { 800 };
    let wl = mixed_workload(n, 800, 1, 0xE11);
    let opts = BuildOptions::default();
    for bins in [4usize, 8, 16, 32, 64, 128] {
        let synopses: Vec<EquiDepthHistogram> = wl
            .sets
            .iter()
            .map(|pts| EquiDepthHistogram::from_points(pts, bins))
            .collect();
        // Per-owner measured δ_i, padded (probe is a lower bound). The
        // whole-federation sweep runs on the worker pool, one RNG stream per
        // dataset, so it measures the same δ_i at every thread count.
        let deltas: Vec<f64> =
            error::estimate_percentile_errors(&synopses, &wl.sets, 60, 0xE11 + 1, &opts)
                .into_iter()
                .map(|d| (1.5 * d + 0.005).clamp(0.002, 0.6))
                .collect();
        let measured = deltas.iter().fold(0.0f64, |a, &b| a.max(b));
        let params = PtileBuildParams::default().with_rect_budget(496);
        let idx =
            PtileThresholdIndex::build_with_deltas_opts(&synopses, Some(&deltas), params, &opts);
        let slack = idx.slack();
        let queries = ptile_queries(&wl, scale.queries(), 12, idx.margin(), 0xE11 + 2);
        let (mut missed, mut viol, mut exact, mut reported) = (0usize, 0usize, 0usize, 0usize);
        for q in &queries {
            let hits = idx.query(&q.rect, q.a);
            let check = check_ptile(&wl.sets, &q.rect, Interval::new(q.a, 1.0), &hits, slack);
            missed += check.missed.len();
            viol += check.out_of_band.len();
            exact += check.exact_out;
            reported += check.reported;
        }
        table.row(vec![
            bins.to_string(),
            format!("{measured:.4}"),
            format!("{:.3}", slack),
            missed.to_string(),
            viol.to_string(),
            exact.to_string(),
            reported.to_string(),
            format!("{:.3}", exact as f64 / reported.max(1) as f64),
        ]);
    }
    table
}
