//! The experiment implementations (DESIGN.md §5).

pub mod ablations;
pub mod batch;
pub mod churn;
pub mod exact;
pub mod fault;
pub mod federated;
pub mod latency;
pub mod lowerbound;
pub mod pref;
pub mod ptile;
pub mod routing;
pub mod scaling;
pub mod serving;
pub mod setup;
pub mod shard;

/// Sweep sizes: `quick` shrinks every experiment for fast runs, `smoke`
/// shrinks them further to a CI sanity check.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Reduced sweeps for fast runs.
    pub quick: bool,
    /// Minimal sweeps: just prove the experiment executes end-to-end.
    pub smoke: bool,
}

impl Scale {
    /// The repository-size sweep for scaling experiments.
    pub fn n_sweep(&self) -> Vec<usize> {
        if self.smoke {
            vec![200, 400]
        } else if self.quick {
            vec![500, 1000, 2000]
        } else {
            vec![1000, 2000, 4000, 8000, 16000, 32000]
        }
    }

    /// Number of measured queries per configuration.
    pub fn queries(&self) -> usize {
        if self.smoke {
            4
        } else if self.quick {
            10
        } else {
            30
        }
    }
}
