//! E8 / E9 / E10 — space & preprocessing scaling, dynamic updates, and
//! enumeration delay.

use super::setup::{ball_workload, clustered_workload, mixed_workload, ptile_queries};
use super::Scale;
use crate::table::{fmt_bytes, fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::delay::DelayRecorder;
use dds_core::pool::BuildOptions;
use dds_core::pref::{PrefBuildParams, PrefIndex};
use dds_core::ptile::{
    DynamicPtileIndex, PtileBuildParams, PtileMultiIndex, PtileRangeIndex, PtileThresholdIndex,
};
use std::time::Duration;

fn bench_params() -> PtileBuildParams {
    // Budget 496 ⇒ 31 grid coordinates per dimension; with the decoupled
    // 512-point weight sample the measured per-dataset budgets land around
    // ε_i ≈ 0.18 (sampling ≈ 0.11 + grid gaps ≈ 0.07) — provable margins,
    // no empirical override needed.
    PtileBuildParams::default().with_rect_budget(496)
}

/// E8 — Õ(N) space and preprocessing (Lemmas 4.3, 4.10, 5.3) plus
/// worker-pool build scaling: per repository size N the four build paths are
/// timed serially (`threads = 1`), then the largest N is rebuilt with
/// threads ∈ {2, 4, 8}. Parallel builds are bit-identical to serial ones,
/// so the bytes columns double as a determinism check (they must not move
/// across the thread sweep) and "speedup" is the serial total build time
/// over this row's total.
pub fn e8_construction_scaling(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8 — space & preprocessing vs N and threads (Lemmas 4.3 / 4.10 / 5.3; worker-pool build)",
        &[
            "N",
            "threads",
            "thr build",
            "rng build",
            "pref build",
            "multi build",
            "total",
            "speedup",
            "thr lifted",
            "thr bytes",
            "rng bytes",
            "pref bytes",
        ],
    );
    let sweep = scale.n_sweep();
    let n_max = *sweep.iter().max().expect("non-empty N sweep");
    let mut serial_total_at_max = Duration::ZERO;
    for n in sweep {
        let row = e8_build_row(n, &BuildOptions::serial());
        if n == n_max {
            serial_total_at_max = row.total;
        }
        table.row(row.cells(1.0));
    }
    for threads in [2usize, 4, 8] {
        let row = e8_build_row(n_max, &BuildOptions::with_threads(threads));
        let speedup = serial_total_at_max.as_secs_f64() / row.total.as_secs_f64().max(1e-12);
        table.row(row.cells(speedup));
    }
    table
}

/// One E8 configuration: all four build paths under one pool configuration.
struct E8Row {
    n: usize,
    threads: usize,
    t_thr: Duration,
    t_rng: Duration,
    t_pref: Duration,
    t_multi: Duration,
    total: Duration,
    thr_lifted: usize,
    thr_bytes: usize,
    rng_bytes: usize,
    pref_bytes: usize,
}

impl E8Row {
    fn cells(&self, speedup: f64) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.threads.to_string(),
            fmt_duration(self.t_thr),
            fmt_duration(self.t_rng),
            fmt_duration(self.t_pref),
            fmt_duration(self.t_multi),
            fmt_duration(self.total),
            format!("{speedup:.2}x"),
            self.thr_lifted.to_string(),
            fmt_bytes(self.thr_bytes),
            fmt_bytes(self.rng_bytes),
            fmt_bytes(self.pref_bytes),
        ]
    }
}

fn e8_build_row(n: usize, opts: &BuildOptions) -> E8Row {
    let wl = mixed_workload(n, 300, 1, 0xE8);
    let (thr, t_thr) = time(|| PtileThresholdIndex::build_opts(&wl.synopses, bench_params(), opts));
    let (rng_idx, t_rng) = time(|| PtileRangeIndex::build_opts(&wl.synopses, bench_params(), opts));
    let (_multi, t_multi) =
        time(|| PtileMultiIndex::build_opts(&wl.synopses, 2, bench_params(), opts));
    let ball = ball_workload(n, 200, 2, 0xE8 + 1);
    let (pref, t_pref) = time(|| {
        PrefIndex::build_opts(
            &ball.synopses,
            5,
            PrefBuildParams::exact_centralized().with_eps(0.05),
            opts,
        )
    });
    E8Row {
        n,
        threads: opts.threads,
        t_thr,
        t_rng,
        t_pref,
        t_multi,
        total: t_thr + t_rng + t_pref + t_multi,
        thr_lifted: thr.lifted_points(),
        thr_bytes: thr.memory_bytes(),
        rng_bytes: rng_idx.memory_bytes(),
        pref_bytes: pref.memory_bytes(),
    }
}

/// E9 — Remark 1: dynamic synopsis insertion/deletion cost vs full rebuild.
pub fn e9_dynamic_updates(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9 — dynamic updates (Remark 1): per-op cost vs full rebuild",
        &[
            "N base",
            "insert avg",
            "remove avg",
            "query/q",
            "rebuild (static)",
        ],
    );
    let sweep = if scale.quick {
        vec![500]
    } else {
        vec![2000, 8000]
    };
    for n in sweep {
        let wl = clustered_workload(n, 300, 1, 0xE9);
        let mut dynamic = DynamicPtileIndex::new(1, bench_params());
        for s in &wl.synopses {
            dynamic.insert_synopsis(s);
        }
        // Measured churn: 200 inserts + 200 removals.
        let extra = clustered_workload(200, 300, 1, 0xE9 + 1);
        let mut handles = Vec::new();
        let (_, t_ins) = time(|| {
            for s in &extra.synopses {
                handles.push(dynamic.insert_synopsis(s));
            }
        });
        let (_, t_rem) = time(|| {
            for h in &handles {
                dynamic.remove_synopsis(*h);
            }
        });
        let queries = ptile_queries(&wl, scale.queries(), 10, dynamic.margin(), 0xE9 + 2);
        let mut t_q = Vec::new();
        for q in &queries {
            let (_, d) = time(|| dynamic.query(&q.rect, q.theta));
            t_q.push(d);
        }
        let (_, t_rebuild) = time(|| PtileRangeIndex::build(&wl.synopses, bench_params()));
        table.row(vec![
            n.to_string(),
            fmt_duration(t_ins / 200),
            fmt_duration(t_rem / 200),
            fmt_duration(median_duration(t_q)),
            fmt_duration(t_rebuild),
        ]);
    }
    table
}

/// E10 — Remark 3: enumeration delay. Max gap between consecutive reports
/// must stay flat as N grows (per-result polylog, not linear).
pub fn e10_delay(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10 — enumeration delay (Remark 3): inter-report gaps on large outputs",
        &["N", "results", "mean gap", "max gap", "total"],
    );
    for n in scale.n_sweep() {
        let wl = mixed_workload(n, 200, 1, 0xE10);
        let idx = PtileThresholdIndex::build(&wl.synopses, bench_params());
        // A broad query with a large output: every gap is one "delay".
        let rect = dds_geom::Rect::interval(10.0, 90.0);
        let mut rec = DelayRecorder::new();
        idx.query_cb(&rect, 0.3, &mut |_| rec.tick());
        rec.finish();
        let results = rec.results();
        table.row(vec![
            n.to_string(),
            results.to_string(),
            fmt_duration(rec.mean_gap()),
            fmt_duration(rec.max_gap()),
            fmt_duration(rec.total()),
        ]);
        let _: Duration = rec.max_gap();
    }
    table
}
