//! E16 — shard lifecycle under churn: split, merge, and rebalance.
//!
//! The operational story behind `ShardedEngine`'s lifecycle ops: a
//! service starts from a **skewed** partition
//! ([`RepoSpec::shards_skewed`] — one oversized head shard and a tail of
//! small ones, the realistic bad case), measures per-shard load over a
//! query batch, lets [`rebalance_plan_with`] propose splits from those
//! counters, applies the plan, and then survives rounds of ongoing churn
//! (split the largest shard, merge the two smallest) with queries
//! interleaved throughout. Every row asserts **`=unsharded`**: the
//! served answers stay bit-identical to a single unsharded engine across
//! every transition — the `tests/shard_equivalence.rs` contract at
//! experiment scale. The `max/min` column is the dataset-count balance
//! factor, showing the rebalance actually flattening the skew.
//!
//! [`RepoSpec::shards_skewed`]: dds_workload::RepoSpec::shards_skewed
//! [`rebalance_plan_with`]: dds_core::shard::ShardedEngine::rebalance_plan_with

use super::setup::ptile_queries;
use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::engine::MixedQueryEngine;
use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::{GlobalId, RebalanceAction, RebalanceConfig, ShardedEngine};
use dds_workload::RepoSpec;

/// Distinct query shapes; batches cycle through them (as in E12/E14).
const DISTINCT_SHAPES: usize = 24;

fn bench_params() -> PtileBuildParams {
    PtileBuildParams::default().with_rect_budget(496)
}

fn pref_params() -> PrefBuildParams {
    PrefBuildParams::exact_centralized().with_eps(0.05)
}

/// The same mixed DNF shapes E14 uses, seeded independently.
fn expression_pool(wl: &super::setup::Workload, margin: f64) -> Vec<LogicalExpr> {
    let qs = ptile_queries(wl, DISTINCT_SHAPES, 10, margin, 0xE16 + 1);
    qs.iter()
        .enumerate()
        .map(|(i, q)| {
            let score_bar = 20.0 + 60.0 * (i as f64 / DISTINCT_SHAPES as f64);
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile(q.rect.clone(), q.theta)),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, score_bar)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(q.rect.clone(), q.a)),
            ])
        })
        .collect()
}

/// E16 — lifecycle churn: skewed start, counter-driven rebalance, then
/// split/merge rounds, each phase timed and asserted byte-identical to
/// the unsharded baseline.
pub fn e16_shard_churn(scale: Scale) -> Table {
    let mut table = Table::new(
        "E16 — shard lifecycle under churn (skewed start → rebalance → split/merge rounds; answers pinned to unsharded)",
        &[
            "N",
            "threads",
            "phase",
            "shards",
            "max/min",
            "transitions",
            "total",
            "/query",
            "=unsharded",
        ],
    );
    let n = if scale.smoke {
        300
    } else if scale.quick {
        1000
    } else {
        4000
    };
    let batch = if scale.smoke {
        32
    } else if scale.quick {
        128
    } else {
        256
    };
    let rounds = if scale.smoke {
        2
    } else if scale.quick {
        3
    } else {
        5
    };
    let spec = RepoSpec::mixed(n, 300, 1, 0xE16);
    let wl = super::setup::mixed_workload(n, 300, 1, 0xE16);
    let unsharded_engine = MixedQueryEngine::build(
        &Repository::from_point_sets(wl.sets.clone()),
        &[1],
        bench_params().with_phi_datasets(n),
        pref_params(),
    );
    let pool = expression_pool(&wl, unsharded_engine.ptile_slack() / 2.0);
    let exprs: Vec<LogicalExpr> = (0..batch).map(|i| pool[i % pool.len()].clone()).collect();
    let baseline: Vec<Vec<GlobalId>> = exprs
        .iter()
        .map(|e| {
            e_to_ids(
                unsharded_engine
                    .query(e)
                    .expect("rank 1 is indexed in this workload"),
            )
        })
        .collect();
    let thread_counts: &[usize] = if scale.smoke { &[1, 4] } else { &[1, 4, 8] };
    for &threads in thread_counts {
        let opts = BuildOptions::with_threads(threads);
        // The skewed start: a heavy head shard and a small tail — what a
        // catalog that grew in place looks like before any rebalancing.
        let mut svc = ShardedEngine::new(&[1], bench_params().with_phi_datasets(n), pref_params());
        for shard in spec.shards_skewed(3) {
            svc.add_shard_opts(
                &Repository::from_point_sets(shard.sets),
                &shard.global_ids,
                &opts,
            );
        }
        let mut row =
            |svc: &ShardedEngine, phase: &str, transitions: String, total: std::time::Duration| {
                table.row(vec![
                    n.to_string(),
                    threads.to_string(),
                    phase.to_string(),
                    svc.n_shards().to_string(),
                    balance_factor(svc),
                    transitions,
                    fmt_duration(total),
                    fmt_duration(total / batch as u32),
                    "✓".to_string(),
                ]);
            };
        // Phase 1 — query the skewed layout. This also warms the
        // per-shard query-load counters the rebalance planner reads.
        let t = run_and_assert(&svc, &exprs, &opts, &baseline, "skewed");
        row(&svc, "skewed", "—".to_string(), t);
        // Phase 2 — counter-driven rebalance: the oversized head shard
        // must propose a split (upper half of its ascending ids).
        let cfg = RebalanceConfig {
            max_datasets: n / 3,
            merge_under: 0, // merges exercised by the churn rounds below
            hot_factor: 4.0,
        };
        let plan = svc.rebalance_plan_with(&cfg);
        let splits = plan
            .iter()
            .filter(|a| matches!(a, RebalanceAction::Split { .. }))
            .count();
        assert!(
            splits >= 1,
            "the skewed head shard must exceed max_datasets = {} and propose a split",
            cfg.max_datasets
        );
        svc.apply_rebalance_opts(&plan, &opts)
            .expect("a freshly computed plan applies cleanly");
        let t = run_and_assert(&svc, &exprs, &opts, &baseline, "rebalanced");
        row(&svc, "rebalanced", format!("{splits} split(s)"), t);
        // Phase 3 — ongoing churn: each round splits the largest shard
        // and merges the two smallest, with the batch re-run (and
        // re-asserted) after the storm. Shard count is conserved per
        // round; answers never move.
        for round in 1..=rounds {
            let loads = svc.shard_loads();
            let largest = loads
                .iter()
                .max_by_key(|l| (l.datasets, l.shard))
                .expect("service is non-empty");
            let mut ids = svc.global_ids(largest.shard).to_vec();
            ids.sort_unstable();
            let move_ids = ids.split_off(ids.len() / 2);
            svc.try_split_shard_opts(largest.shard, &move_ids, &opts)
                .expect("the largest shard always has two sides to split");
            let mut by_size = svc.shard_loads();
            by_size.sort_by_key(|l| (l.datasets, l.shard));
            let (a, b) = (by_size[0].shard, by_size[1].shard);
            svc.try_merge_shards_opts(a, b, &opts)
                .expect("two distinct live shards always merge");
            assert_eq!(svc.n_datasets(), n, "churn conserves the catalog");
            let phase = format!("churn r{round}");
            let t = run_and_assert(&svc, &exprs, &opts, &baseline, &phase);
            row(&svc, &phase, "1 split + 1 merge".to_string(), t);
        }
        let stats = svc.stats_snapshot();
        assert!(
            stats.splits as usize > rounds && stats.merges as usize >= rounds,
            "lifetime counters must record every transition (splits {}, merges {})",
            stats.splits,
            stats.merges
        );
    }
    table
}

/// Times one batch and asserts every answer equals the unsharded
/// baseline's — the determinism contract this experiment exists to show
/// surviving churn.
fn run_and_assert(
    svc: &ShardedEngine,
    exprs: &[LogicalExpr],
    opts: &BuildOptions,
    baseline: &[Vec<GlobalId>],
    phase: &str,
) -> std::time::Duration {
    let (answers, t) = time(|| svc.query_batch_opts(exprs, opts));
    for (i, answer) in answers.iter().enumerate() {
        assert_eq!(
            answer.as_ref().expect("no missing ranks in this workload"),
            &baseline[i],
            "answers must match unsharded after '{phase}' (expr {i})"
        );
    }
    t
}

/// Dataset-count balance: largest shard over smallest, the skew the
/// rebalance plan exists to flatten.
fn balance_factor(svc: &ShardedEngine) -> String {
    let loads = svc.shard_loads();
    let max = loads.iter().map(|l| l.datasets).max().unwrap_or(0);
    let min = loads.iter().map(|l| l.datasets).min().unwrap_or(0);
    if min == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}", max as f64 / min as f64)
    }
}

/// Canonical answer form: ascending global ids.
fn e_to_ids(hits: Vec<usize>) -> Vec<GlobalId> {
    let mut ids: Vec<GlobalId> = hits.into_iter().map(|j| j as GlobalId).collect();
    ids.sort_unstable();
    ids
}
