//! E12 — batch query throughput over the worker pool.
//!
//! The read side of a dataset-search service is read-mostly and highly
//! concurrent; after the `&self` refactor one [`MixedQueryEngine`] serves
//! any number of reader threads. This experiment measures the
//! `query_batch` fan-out (`dds_pool::par_map_with`, per-worker scratch,
//! shared predicate-mask cache) against sequential one-at-a-time
//! execution: a threads × batch-size sweep with a speedup column, plus a
//! measured before/after allocation count for the scratch-reuse path
//! (fresh [`QueryScratch`] per query vs one reused scratch).
//!
//! Every batch row asserts bit-identical answers to the sequential
//! baseline, so the table doubles as a determinism check (the contract
//! `tests/batch_equivalence.rs` pins at small scale).

use super::setup::{mixed_workload, ptile_queries};
use super::Scale;
use crate::alloc::count_allocations;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::engine::MixedQueryEngine;
use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::scratch::QueryScratch;

/// Expressions per distinct predicate set: batches repeat predicates (as
/// real workloads do — popular filters recur), so the shared mask cache
/// has cross-expression hits to exploit.
const DISTINCT_SHAPES: usize = 24;

fn bench_params() -> PtileBuildParams {
    PtileBuildParams::default().with_rect_budget(496)
}

/// A mixed expression pool over the standard 1-d workload: percentile
/// range/threshold literals anchored on real data plus top-1 score
/// thresholds, combined into 2–3-literal DNF shapes.
fn expression_pool(wl: &super::setup::Workload, margin: f64) -> Vec<LogicalExpr> {
    let qs = ptile_queries(wl, DISTINCT_SHAPES, 10, margin, 0xB12 + 1);
    qs.iter()
        .enumerate()
        .map(|(i, q)| {
            let score_bar = 20.0 + 60.0 * (i as f64 / DISTINCT_SHAPES as f64);
            LogicalExpr::Or(vec![
                LogicalExpr::And(vec![
                    LogicalExpr::Pred(Predicate::percentile(q.rect.clone(), q.theta)),
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, score_bar)),
                ]),
                LogicalExpr::Pred(Predicate::percentile_at_least(q.rect.clone(), q.a)),
            ])
        })
        .collect()
}

/// E12 — batch query throughput: threads × batch-size sweep. "speedup" is
/// sequential one-at-a-time time over this row's batch time (same batch);
/// "=seq" asserts bit-identical results. The engine's cross-call mask
/// cache is invalidated before every timed row, so rows are comparable
/// (cache-warmth effects are E14's subject, not this table's). The two allocation columns meter
/// a sequential loop with a fresh scratch per query vs one reused scratch
/// (threads = 1 row only; `n/a` without the counting allocator, i.e.
/// anywhere but the `experiments` binary).
pub fn e12_batch_query_throughput(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12 — batch query throughput (query_batch over dds-pool; shared mask cache)",
        &[
            "N",
            "batch",
            "threads",
            "total",
            "/query",
            "speedup",
            "=seq",
            "allocs/q fresh",
            "allocs/q reused",
        ],
    );
    let n = if scale.smoke {
        300
    } else if scale.quick {
        1000
    } else {
        4000
    };
    let wl = mixed_workload(n, 300, 1, 0xB12);
    let repo = Repository::from_point_sets(wl.sets.clone());
    let engine = MixedQueryEngine::build(
        &repo,
        &[1],
        bench_params(),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    );
    let pool = expression_pool(&wl, engine.ptile_slack() / 2.0);
    let batch_sizes: &[usize] = if scale.smoke {
        &[8, 32]
    } else if scale.quick {
        &[32, 128]
    } else {
        &[64, 256, 1024]
    };
    for &batch in batch_sizes {
        let exprs: Vec<LogicalExpr> = (0..batch).map(|i| pool[i % pool.len()].clone()).collect();
        // Sequential baseline: one-at-a-time queries, fresh scratch each —
        // exactly what a naive caller would write.
        let (sequential, t_seq) =
            time(|| exprs.iter().map(|e| engine.query(e)).collect::<Vec<_>>());
        // Allocation metering (timing excluded from the sweep rows).
        let (_, allocs_fresh) = count_allocations(|| {
            for e in &exprs {
                let _ = engine.query(e);
            }
        });
        let (_, allocs_reused) = count_allocations(|| {
            let mut scratch = QueryScratch::new();
            for e in &exprs {
                let _ = engine.query_with(e, &mut scratch);
            }
        });
        let fmt_allocs = |a: Option<u64>| {
            a.map_or("n/a".to_string(), |total| {
                format!("{:.1}", total as f64 / batch as f64)
            })
        };
        for threads in [1usize, 2, 4, 8] {
            let opts = BuildOptions::with_threads(threads);
            // The mask cache is cross-call since PR 4: invalidate before
            // each timed row so every row starts cold and the speedup
            // column compares thread counts, not cache warmth (in-batch
            // dedup still applies — that is the row's own cache fill).
            engine.mask_cache().invalidate();
            let (answers, t_batch) = time(|| engine.query_batch_opts(&exprs, &opts));
            assert_eq!(
                answers, sequential,
                "batch answers must be bit-identical to sequential (batch {batch}, threads {threads})"
            );
            let speedup = t_seq.as_secs_f64() / t_batch.as_secs_f64().max(1e-12);
            let (af, ar) = if threads == 1 {
                (fmt_allocs(allocs_fresh), fmt_allocs(allocs_reused))
            } else {
                ("—".to_string(), "—".to_string())
            };
            table.row(vec![
                n.to_string(),
                batch.to_string(),
                threads.to_string(),
                fmt_duration(t_batch),
                fmt_duration(t_batch / batch as u32),
                format!("{speedup:.2}x"),
                "✓".to_string(),
                af,
                ar,
            ]);
        }
    }
    table
}
