//! Shared workload setup for the experiments.

use dds_core::framework::Interval;
use dds_geom::{Point, Rect};
use dds_synopsis::ExactSynopsis;
use dds_workload::{queries, RepoSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A materialized experiment repository with exact synopses.
pub struct Workload {
    /// Raw point sets.
    pub sets: Vec<Vec<Point>>,
    /// Exact synopses (centralized setting).
    pub synopses: Vec<ExactSynopsis>,
    /// Data bounding box.
    pub bbox: Rect,
}

/// Builds the standard mixed 1-d repository used by E1–E3, E8–E10.
pub fn mixed_workload(n: usize, points: usize, dim: usize, seed: u64) -> Workload {
    let spec = RepoSpec::mixed(n, points, dim, seed);
    let bbox = spec.bbox();
    let sets = spec.build();
    let synopses = sets
        .iter()
        .map(|pts| ExactSynopsis::new(pts.clone()))
        .collect();
    Workload {
        sets,
        synopses,
        bbox,
    }
}

/// Builds a clustered repository: every dataset is a few random Gaussian
/// blobs, so per-rectangle masses spread smoothly instead of piling on a
/// single value (keeps the output-controlled query workloads meaningful).
pub fn clustered_workload(n: usize, points: usize, dim: usize, seed: u64) -> Workload {
    let spec = RepoSpec {
        n_datasets: n,
        min_points: points / 2,
        max_points: points.max(2),
        dim,
        flavors: vec![dds_workload::RepoFlavor::Clustered],
        seed,
    };
    let bbox = spec.bbox();
    let sets = spec.build();
    let synopses = sets
        .iter()
        .map(|pts| ExactSynopsis::new(pts.clone()))
        .collect();
    Workload {
        sets,
        synopses,
        bbox,
    }
}

/// Builds the unit-ball repository used by the Pref experiments.
pub fn ball_workload(n: usize, points: usize, dim: usize, seed: u64) -> Workload {
    let spec = RepoSpec::unit_ball(n, points, dim, seed);
    let bbox = spec.bbox();
    let sets = spec.build();
    let synopses = sets
        .iter()
        .map(|pts| ExactSynopsis::new(pts.clone()))
        .collect();
    Workload {
        sets,
        synopses,
        bbox,
    }
}

/// A Ptile query workload: rectangles anchored on datasets plus a threshold
/// chosen as a quantile of the per-dataset masses, so the true output size
/// is controlled (~`target_out` datasets).
pub struct PtileQuery {
    /// Query rectangle.
    pub rect: Rect,
    /// Threshold `a_θ`.
    pub a: f64,
    /// Two-sided interval (for range experiments): `[a, b]`.
    pub theta: Interval,
}

/// Generates `count` Ptile queries with roughly `target_out` datasets
/// *reported* each. `margin` should be the queried index's `margin()`
/// (`ε + δ`): the threshold is placed `margin` above the `target_out`-th
/// mass quantile so that the widened bar `a − margin` admits about
/// `target_out` datasets — keeping the measured output size comparable
/// across N (the experiments measure output-sensitive query time).
pub fn ptile_queries(
    wl: &Workload,
    count: usize,
    target_out: usize,
    margin: f64,
    seed: u64,
) -> Vec<PtileQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = wl.sets.len();
    (0..count)
        .map(|_| {
            // Anchor on a random dataset so the rectangle has real mass.
            let anchor = rng.gen_range(0..n);
            let rect = queries::rect_with_selectivity(&mut rng, &wl.sets[anchor], 0.6);
            // Threshold = quantile of masses, lifted by the index margin.
            let mut masses: Vec<f64> = wl.sets.iter().map(|pts| rect.mass(pts)).collect();
            masses.sort_unstable_by(|a, b| b.total_cmp(a));
            let k = target_out.min(n - 1);
            // Lift by the full 2·margin guarantee band so the widened bar
            // a − margin stays above the (k+jitter)-th mass.
            let a = (masses[k] + 2.0 * margin + 1e-6).clamp(margin + 0.02, 0.95);
            let b = (a + 0.15).min(1.0);
            PtileQuery {
                rect,
                a,
                theta: Interval::new(a, b),
            }
        })
        .collect()
}

/// Pref query workload: unit vector plus a threshold with ~`target` fraction
/// of datasets qualifying.
pub fn pref_queries(
    wl: &Workload,
    k: usize,
    count: usize,
    target: f64,
    seed: u64,
) -> Vec<(Vec<f64>, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = wl.sets[0][0].dim();
    (0..count)
        .map(|_| {
            let v = queries::random_unit_vector(&mut rng, dim);
            let a = queries::threshold_with_selectivity(&wl.sets, &v, k, target);
            (v, a)
        })
        .collect()
}
