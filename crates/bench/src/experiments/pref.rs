//! E6 / E7 — the Pref experiments (Theorems 5.4 and D.4).

use super::setup::{ball_workload, pref_queries};
use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::baseline::LinearScanPref;
use dds_core::framework::Repository;
use dds_core::guarantee::check_pref;
use dds_core::pref::{PrefBuildParams, PrefIndex, PrefMultiIndex};

/// E6 — Theorem 5.4 shape: `O(log N + OUT)` queries vs the Ω(𝒩) scan, with
/// recall/band accounting.
pub fn e6_pref_scaling(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6 — Pref threshold queries (Thm 5.4): scaling vs linear scan (d=2, k=10)",
        &[
            "N",
            "build",
            "dirs",
            "index/q",
            "scan/q",
            "missed",
            "band viol.",
            "avg OUT",
        ],
    );
    let k = 10;
    for n in scale.n_sweep() {
        let wl = ball_workload(n, 300, 2, 0xE6);
        let qs = pref_queries(&wl, k, scale.queries(), 0.01, 0xE6 + 1);
        let params = PrefBuildParams::exact_centralized().with_eps(0.05);
        let (idx, build) = time(|| PrefIndex::build(&wl.synopses, k, params));
        let repo = Repository::from_point_sets(wl.sets.clone());
        let scan = LinearScanPref::build(&repo);
        let slack = idx.slack();
        let mut t_idx = Vec::new();
        let mut t_scan = Vec::new();
        let (mut missed, mut viol, mut out_total) = (0usize, 0usize, 0usize);
        for (v, a) in &qs {
            let (hits, d) = time(|| idx.query(v, *a));
            t_idx.push(d);
            let (_, d) = time(|| scan.query(v, k, *a));
            t_scan.push(d);
            let check = check_pref(&wl.sets, v, k, *a, &hits, slack);
            missed += check.missed.len();
            viol += check.out_of_band.len();
            out_total += hits.len();
        }
        table.row(vec![
            n.to_string(),
            fmt_duration(build),
            idx.directions().to_string(),
            fmt_duration(median_duration(t_idx)),
            fmt_duration(median_duration(t_scan)),
            missed.to_string(),
            viol.to_string(),
            format!("{:.1}", out_total as f64 / qs.len() as f64),
        ]);
    }
    table
}

/// E7 — Theorem D.4: conjunctions of two Pref predicates with lazy `T_V`
/// materialization; the first query on a direction tuple pays the build,
/// repeats are cheap.
pub fn e7_pref_multi(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7 — Pref conjunctions, m = 2 (Thm D.4): lazy T_V materialization",
        &[
            "N",
            "score table",
            "first/q",
            "cached/q",
            "trees built",
            "missed",
            "avg OUT",
        ],
    );
    let k = 5;
    let sweep = if scale.quick {
        vec![500, 1000]
    } else {
        vec![1000, 4000, 16000]
    };
    for n in sweep {
        let wl = ball_workload(n, 200, 2, 0xE7);
        let qs = pref_queries(&wl, k, scale.queries(), 0.02, 0xE7 + 1);
        let params = PrefBuildParams::exact_centralized().with_eps(0.1);
        let (idx, build) = time(|| PrefMultiIndex::build(&wl.synopses, k, 2, params));
        let slack = idx.slack();
        let mut t_first = Vec::new();
        let mut t_cached = Vec::new();
        let (mut missed, mut out_total, mut n_q) = (0usize, 0usize, 0usize);
        for pair in qs.chunks(2) {
            if pair.len() < 2 {
                break;
            }
            let conj = [
                (pair[0].0.clone(), pair[0].1),
                (pair[1].0.clone(), pair[1].1),
            ];
            let (hits, d1) = time(|| idx.query(&conj));
            t_first.push(d1);
            let (_, d2) = time(|| idx.query(&conj));
            t_cached.push(d2);
            out_total += hits.len();
            n_q += 1;
            // Conjunction-level recall: every dataset clearing both legs
            // must be reported.
            let qualifies_both: Vec<usize> = (0..wl.sets.len())
                .filter(|&i| {
                    conj.iter().all(|(v, a)| {
                        dds_workload::queries::exact_kth_score(&wl.sets[i], v, k) >= *a
                    })
                })
                .collect();
            missed += qualifies_both.iter().filter(|i| !hits.contains(i)).count();
            let _ = slack;
        }
        table.row(vec![
            n.to_string(),
            fmt_duration(build),
            fmt_duration(median_duration(t_first)),
            fmt_duration(median_duration(t_cached)),
            idx.materialized_trees().to_string(),
            missed.to_string(),
            format!("{:.1}", out_total as f64 / n_q.max(1) as f64),
        ]);
    }
    table
}
