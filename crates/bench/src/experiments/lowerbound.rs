//! E13 — the Section 3.1 / Figure 4 reduction, executed at scale.
//! (Renumbered from E12 when the batch-query-throughput experiment took
//! that slot.)

use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::{median_duration, time};
use dds_core::lowerbound::SetIntersectionCPtile;
use dds_workload::UniformSetInstance;

/// E13 — set intersection through the CPtile oracle: exactness and query
/// cost of the reduction (Theorem 3.4's construction).
pub fn e13_set_intersection(scale: Scale) -> Table {
    let mut table = Table::new(
        "E13 — set intersection ↔ CPtile reduction (Fig. 4 / Thm 3.4)",
        &[
            "g",
            "universe",
            "repl",
            "M",
            "build",
            "oracle/q",
            "brute/q",
            "mismatches",
        ],
    );
    let configs = if scale.quick {
        vec![(8usize, 60u64, 3usize)]
    } else {
        vec![(8usize, 60u64, 3usize), (16, 200, 4), (32, 500, 6)]
    };
    for (g, universe, repl) in configs {
        let inst = UniformSetInstance::generate(g, universe, repl, 0xE12);
        let (red, build) = time(|| SetIntersectionCPtile::build(&inst.sets, inst.universe));
        let mut t_oracle = Vec::new();
        let mut t_brute = Vec::new();
        let mut mismatches = 0usize;
        for i in 0..g {
            for j in 0..g {
                let (got, d) = time(|| red.intersect(i, j));
                t_oracle.push(d);
                let (want, d) = time(|| inst.intersect(i, j));
                t_brute.push(d);
                if got != want {
                    mismatches += 1;
                }
            }
        }
        table.row(vec![
            g.to_string(),
            universe.to_string(),
            repl.to_string(),
            inst.total_size().to_string(),
            fmt_duration(build),
            fmt_duration(median_duration(t_oracle)),
            fmt_duration(median_duration(t_brute)),
            mismatches.to_string(),
        ]);
    }
    table
}
