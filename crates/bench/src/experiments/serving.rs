//! E15 — zero-allocation serving steady state.
//!
//! The readiness-based server holds every session's request and response
//! buffers in a size-classed pool and the client reuses one scratch
//! buffer per direction, so once warm, a control-op round trip (ping)
//! touches the allocator **zero** times across *both* ends — client
//! encode, server read, server encode, client read all run inside
//! retained capacity. This experiment pins that with the counting
//! allocator (the same harness E12 uses for scratch reuse): the ping row
//! **asserts** zero allocations per round trip when the counter is
//! installed, so a regression fails the smoke run instead of quietly
//! costing two mallocs per frame at every deployment. Query round trips
//! are metered too (reported, not asserted: the engine's answer path
//! legitimately allocates its result vectors).

use super::Scale;
use crate::alloc::count_allocations;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::framework::{LogicalExpr, Predicate, Repository};
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_geom::Rect;
use dds_server::{DdsClient, DdsServer, ServerConfig};
use dds_workload::RepoSpec;

/// E15 — served round trips over a warm session: ping is asserted
/// allocation-free end to end (when the counting allocator is installed);
/// query-path allocations are reported alongside.
pub fn e15_serving_allocations(scale: Scale) -> Table {
    let mut table = Table::new(
        "E15 — serving steady state (readiness loop + buffer pool + client scratch)",
        &["op", "round trips", "total", "per op", "allocs/op"],
    );
    let (warm, measured) = if scale.smoke {
        (64, 100)
    } else if scale.quick {
        (128, 500)
    } else {
        (512, 2000)
    };

    let spec = RepoSpec::mixed(12, 60, 1, 0xE15);
    let mut engine = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    for shard in spec.shards(2) {
        engine.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
    }
    let server =
        DdsServer::serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 100.0),
        0.5,
    ));

    // Warm both ends: session buffers reach their steady capacity, the
    // client scratch grows to fit, lazy thread-startup allocations
    // (parkers, channel nodes) happen now instead of inside the meter.
    for _ in 0..warm {
        client.ping().expect("warm ping");
        client.query(&expr).expect("warm query").expect("rank 1");
    }

    let fmt_allocs = |a: Option<u64>| {
        a.map_or("n/a".to_string(), |total| {
            format!("{:.2}", total as f64 / measured as f64)
        })
    };

    let ((), t_ping) = time(|| {
        for _ in 0..measured {
            client.ping().expect("measured ping");
        }
    });
    let (_, ping_allocs) = count_allocations(|| {
        for _ in 0..measured {
            client.ping().expect("metered ping");
        }
    });
    // The regression gate: a warm control-op round trip is allocation-free
    // end to end. (Outside the experiments binary the counter is absent
    // and this stays un-asserted rather than vacuously green.)
    if let Some(total) = ping_allocs {
        assert_eq!(
            total, 0,
            "steady-state ping round trips must not allocate (got {total} over {measured})"
        );
    }
    table.row(vec![
        "ping".into(),
        measured.to_string(),
        fmt_duration(t_ping),
        fmt_duration(t_ping / measured as u32),
        fmt_allocs(ping_allocs),
    ]);

    let ((), t_query) = time(|| {
        for _ in 0..measured {
            client.query(&expr).expect("measured query").expect("hits");
        }
    });
    let (_, query_allocs) = count_allocations(|| {
        for _ in 0..measured {
            client.query(&expr).expect("metered query").expect("hits");
        }
    });
    table.row(vec![
        "query".into(),
        measured.to_string(),
        fmt_duration(t_query),
        fmt_duration(t_query / measured as u32),
        fmt_allocs(query_allocs),
    ]);

    let stats = server.shutdown();
    assert!(
        stats.buffers_reused > 0 || stats.sessions_opened <= 1,
        "the pool should have served at least the stats/reconnect traffic"
    );
    table
}
