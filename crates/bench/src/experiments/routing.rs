//! E18 — synopsis routing: how much more does the mass bound prune than
//! the bounding box, and at what (zero) cost to answers?
//!
//! The setup mirrors production traffic where routing matters: a catalog
//! partitioned **round-robin** over shards (each shard sees the full
//! flavour mix, so every shard's per-attribute bounding box spans
//! essentially the whole value range — the box tier is blind), queried by
//! a *selective* stream ([`RequestStreamSpec::selective`]): narrow
//! interior rectangles asking `percentile_at_least` with a θ lower bound
//! far above the build's sampling margin. Sweeps rectangle width
//! (selectivity) × shard count, and for each row runs the same batch on
//! three engines over identical shard layouts:
//!
//! * **unrouted** — `with_routing(false)`, the correctness reference;
//! * **box** — `with_synopsis_routing(false)`, the pre-synopsis engine;
//! * **full** — box tier + synopsis mass bound (the default).
//!
//! Columns report the per-row (expression, shard) skip counts of each
//! tier and the full engine's batch time. `=unrouted` asserts all three
//! engines answered the entire batch **byte-identically** — the
//! zero-false-negative claim at experiment scale. At the sharpest
//! configuration (most shards, narrowest rectangles) the run additionally
//! asserts the synopsis tier skipped at least 3× what the box tier did —
//! the headline pruning win this layer exists for.

use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::timing::time;
use dds_core::framework::{LogicalExpr, Repository};
use dds_core::pool::BuildOptions;
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_core::shard::ShardedEngine;
use dds_workload::{RepoSpec, RequestStreamSpec, SelectiveShape};

fn bench_params(n: usize) -> PtileBuildParams {
    PtileBuildParams::default()
        .with_rect_budget(496)
        .with_phi_datasets(n)
}

/// One engine per routing configuration over the same round-robin layout.
fn build_engine(spec: &RepoSpec, k: usize, n: usize, route: bool, synopsis: bool) -> ShardedEngine {
    let mut svc = ShardedEngine::new(
        &[1],
        bench_params(n),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    )
    .with_routing(route)
    .with_synopsis_routing(synopsis);
    for shard in spec.shards(k) {
        svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
    }
    svc
}

/// E18 — selectivity × shard-count sweep of the two routing tiers, with a
/// byte-identity assertion against the unrouted engine on every row.
pub fn e18_selective_routing(scale: Scale) -> Table {
    let mut table = Table::new(
        "E18 — synopsis routing (selective streams; box-tier vs mass-bound skips; three-engine byte-identity)",
        &[
            "N",
            "shards",
            "width%",
            "batch",
            "total",
            "/query",
            "box skips",
            "syn skips",
            "=unrouted",
        ],
    );
    let n = if scale.smoke {
        120
    } else if scale.quick {
        400
    } else {
        2000
    };
    let batch = if scale.smoke {
        24
    } else if scale.quick {
        64
    } else {
        256
    };
    let spec = RepoSpec::mixed(n, 300, 1, 0xE18);
    // Widest → narrowest, so the asserted headline row runs last.
    let widths: &[f64] = if scale.smoke {
        &[0.30, 0.02]
    } else {
        &[0.30, 0.10, 0.02]
    };
    let shard_counts: &[usize] = &[2, 4, 8];
    for &k in shard_counts {
        let unrouted = build_engine(&spec, k, n, false, false);
        let box_only = build_engine(&spec, k, n, true, false);
        let full = build_engine(&spec, k, n, true, true);
        for &width in widths {
            let exprs: Vec<LogicalExpr> = RequestStreamSpec::selective(batch, 0xE18)
                .with_selective_shape(SelectiveShape {
                    width_pct: width,
                    theta_lo: 0.6,
                })
                .exprs(&spec);
            let opts = BuildOptions::default();
            let expected = unrouted.query_batch_opts(&exprs, &opts);
            let box_before = (
                box_only.shards_routed_past(),
                box_only.shards_routed_by_synopsis(),
            );
            let box_answers = box_only.query_batch_opts(&exprs, &opts);
            assert_eq!(
                box_only.shards_routed_by_synopsis(),
                box_before.1,
                "the box-only engine must never take a synopsis skip"
            );
            let full_before = (full.shards_routed_past(), full.shards_routed_by_synopsis());
            let (answers, t) = time(|| full.query_batch_opts(&exprs, &opts));
            let box_skips = full.shards_routed_past() - full_before.0;
            let syn_skips = full.shards_routed_by_synopsis() - full_before.1;
            // Zero false negatives, engine for engine, expression for
            // expression: routing is pure pruning.
            assert_eq!(
                answers, expected,
                "full routing diverged from unrouted (shards {k}, width {width})"
            );
            assert_eq!(
                box_answers, expected,
                "box-only routing diverged from unrouted (shards {k}, width {width})"
            );
            if k == *shard_counts.last().unwrap() && width == *widths.last().unwrap() {
                assert!(
                    syn_skips > 0 && syn_skips >= 3 * box_skips,
                    "the mass bound must out-prune the box ≥3× on narrow interior \
                     traffic at {k} shards (box {box_skips}, synopsis {syn_skips})"
                );
            }
            table.row(vec![
                n.to_string(),
                k.to_string(),
                format!("{:.0}%", width * 100.0),
                batch.to_string(),
                fmt_duration(t),
                fmt_duration(t / batch as u32),
                box_skips.to_string(),
                syn_skips.to_string(),
                "✓".to_string(),
            ]);
        }
    }
    table
}
