//! Experiment harness for the paper reproduction.
//!
//! The paper is a theory paper — its "evaluation" is the set of theorems in
//! Sections 3–5 and Appendices C–D. Every experiment here regenerates one
//! theorem's claim (or one figure's construction) as a measurable table;
//! DESIGN.md §5 is the index mapping experiment ids to paper claims, and
//! EXPERIMENTS.md records paper-vs-measured for a full run.
//!
//! Run with `cargo run --release -p dds-bench --bin experiments -- --all`
//! (or `--eN` / `--aN` selections, `--quick` for smaller sweeps). Criterion
//! micro-benchmarks covering the same query paths live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod experiments;
pub mod table;
pub mod timing;

pub use table::Table;
pub use timing::{median_duration, time};
