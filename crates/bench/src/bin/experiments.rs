//! Experiment harness — regenerates every experiment table of DESIGN.md §5.
//!
//! ```sh
//! cargo run --release -p dds-bench --bin experiments -- --all
//! cargo run --release -p dds-bench --bin experiments -- --e1 --e6
//! cargo run --release -p dds-bench --bin experiments -- --all --quick
//! cargo run --release -p dds-bench --bin experiments -- --smoke   # CI sanity run
//! ```

use dds_bench::experiments::{
    ablations, batch, churn, exact, fault, federated, latency, lowerbound, pref, ptile, routing,
    scaling, serving, shard, Scale,
};
use dds_bench::Table;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Counting global allocator: feeds `dds_bench::alloc::ALLOCATIONS` so E12
/// can report measured allocations per query. Lives in the binary because
/// the library crate forbids `unsafe`; the counter itself is a relaxed
/// atomic add, cheap enough to leave on for the whole run.
struct CountingAlloc;

// SAFETY: defers every operation to `System`; only adds a relaxed counter
// increment on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        dds_bench::alloc::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        dds_bench::alloc::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        dds_bench::alloc::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

type Experiment = (&'static str, &'static str, fn(Scale) -> Table);

const EXPERIMENTS: &[Experiment] = &[
    (
        "--e1",
        "Ptile threshold query scaling (Thm 4.4)",
        ptile::e1_threshold_query_scaling,
    ),
    (
        "--e2",
        "Ptile threshold guarantees (Thm 4.4)",
        ptile::e2_threshold_guarantees,
    ),
    (
        "--e3",
        "Ptile range predicates (Thm 4.11)",
        ptile::e3_range_queries,
    ),
    ("--e4", "Exact CPtile in R^1 (Thm C.5)", exact::e4_exact_1d),
    (
        "--e5",
        "Logical expressions m=2 (Thm C.8)",
        ptile::e5_multi_predicates,
    ),
    (
        "--e6",
        "Pref threshold queries (Thm 5.4)",
        pref::e6_pref_scaling,
    ),
    (
        "--e7",
        "Pref conjunctions m=2 (Thm D.4)",
        pref::e7_pref_multi,
    ),
    (
        "--e8",
        "Space & preprocessing scaling",
        scaling::e8_construction_scaling,
    ),
    (
        "--e9",
        "Dynamic updates (Remark 1)",
        scaling::e9_dynamic_updates,
    ),
    ("--e10", "Enumeration delay (Remark 3)", scaling::e10_delay),
    (
        "--e11",
        "Federated delta sweep",
        federated::e11_federated_delta_sweep,
    ),
    (
        "--e12",
        "Batch query throughput (worker pool)",
        batch::e12_batch_query_throughput,
    ),
    (
        "--e13",
        "Set-intersection reduction (Thm 3.4)",
        lowerbound::e13_set_intersection,
    ),
    (
        "--e14",
        "Sharded scatter/gather throughput",
        shard::e14_sharded_throughput,
    ),
    (
        "--e15",
        "Serving steady state: zero-allocation frames",
        serving::e15_serving_allocations,
    ),
    (
        "--e16",
        "Shard lifecycle under churn (split/merge/rebalance)",
        churn::e16_shard_churn,
    ),
    (
        "--e17",
        "Fault soak (chaos proxy + self-healing client)",
        fault::e17_fault_soak,
    ),
    (
        "--e18",
        "Synopsis routing: selectivity × shards skip rates (box vs mass bound, =unrouted)",
        routing::e18_selective_routing,
    ),
    (
        "--e19",
        "Per-stage serving latency (Metrics op: p50/p99/p999 histograms)",
        latency::e19_stage_latency,
    ),
    (
        "--a1",
        "Ablation: pair enumeration",
        ablations::a1_pair_enumeration,
    ),
    ("--a2", "Ablation: search backend", ablations::a2_backend),
    (
        "--a3",
        "Ablation: lazy vs eager deletion",
        ablations::a3_lazy_vs_eager,
    ),
    (
        "--a4",
        "Ablation: eps vs space budget",
        ablations::a4_eps_budget,
    ),
    (
        "--a5",
        "Ablation: synopsis families",
        ablations::a5_synopsis_families,
    ),
];

fn main() {
    dds_bench::alloc::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = smoke || args.iter().any(|a| a == "--quick");
    let scale = Scale { quick, smoke };
    // Explicit --eN/--aN flags narrow the run; mode flags alone mean all.
    let any_explicit = EXPERIMENTS
        .iter()
        .any(|(flag, _, _)| args.iter().any(|a| a == flag));
    let all =
        args.iter().any(|a| a == "--all") || (!any_explicit && (args.is_empty() || smoke || quick));

    let selected: Vec<&Experiment> = EXPERIMENTS
        .iter()
        .filter(|(flag, _, _)| all || args.iter().any(|a| a == flag))
        .collect();
    if selected.is_empty() {
        eprintln!("usage: experiments [--all|--quick|--smoke|--eN|--aN ...]");
        eprintln!("available experiments:");
        for (flag, what, _) in EXPERIMENTS {
            eprintln!("  {flag:<6} {what}");
        }
        std::process::exit(2);
    }

    println!(
        "# Distribution-aware dataset search — experiment run ({} mode)\n",
        if smoke {
            "smoke"
        } else if quick {
            "quick"
        } else {
            "full"
        }
    );
    let t0 = Instant::now();
    for (flag, what, run) in selected {
        eprintln!("running {flag} ({what})…");
        let t = Instant::now();
        let table = run(scale);
        table.print();
        eprintln!("  done in {:.1?}", t.elapsed());
    }
    eprintln!("\ntotal: {:.1?}", t0.elapsed());
}
