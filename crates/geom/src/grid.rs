//! Per-dimension coordinate grids induced by a sample.
//!
//! Sections 4.2 and 4.3 of the paper build, for every dataset, the set `R_i`
//! of *all combinatorially different hyper-rectangles defined by the sample
//! `S_i`*: rectangles whose facets pass through sample coordinates. Two
//! rectangles are combinatorially equivalent iff they contain the same
//! sample points and touch the same facet coordinates, so the canonical
//! representatives are exactly the products, over dimensions, of coordinate
//! pairs `(lo, hi)` with `lo ≤ hi` drawn from the per-dimension coordinate
//! sets. [`CoordGrid`] owns those coordinate sets and provides:
//!
//! * enumeration of the canonical rectangles (`R_i`),
//! * the *maximal* grid rectangle inside a query rectangle (Lemma 4.5),
//! * the *one-step expansion* `ρ̂` of a grid rectangle — the rectangle
//!   `ρ̂_R` built in Lemma 4.6 by pushing every facet outward to the next
//!   coordinate (±∞ when none exists, playing the role of the paper's
//!   bounding-box facet projections `S̄_i`),
//! * the canonical-pair predicate of Algorithm 3 (`ρ ⊆ ρ̂` with no
//!   `ρ' ∈ R_i` such that `ρ ⊂ ρ' ⊂⊂ ρ̂`), decided in `O(d log s)` via a
//!   closed form instead of scanning `R_i`.

use crate::{Point, Rect};

/// Sorted, de-duplicated per-dimension coordinate sets with ±∞ guards.
#[derive(Clone, Debug)]
pub struct CoordGrid {
    /// `coords[h]` is the strictly increasing list of finite coordinates in
    /// dimension `h`.
    coords: Vec<Vec<f64>>,
}

impl CoordGrid {
    /// Builds the grid from the coordinates of `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty or the points have mixed dimensions.
    pub fn from_points(points: &[Point]) -> Self {
        assert!(
            !points.is_empty(),
            "cannot build a grid from an empty sample"
        );
        let d = points[0].dim();
        let mut coords = vec![Vec::with_capacity(points.len()); d];
        for p in points {
            assert_eq!(p.dim(), d, "mixed dimensions in grid sample");
            for h in 0..d {
                coords[h].push(p[h]);
            }
        }
        for c in &mut coords {
            c.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN coordinate"));
            c.dedup();
        }
        CoordGrid { coords }
    }

    /// Builds the grid from `points` plus the facet coordinates of a bounding
    /// box `bbox`. This mirrors the paper's projection set `S̄_i` (Section
    /// 4.3): projecting every sample onto the `2d` facets of the bounding box
    /// contributes, per dimension, exactly the box facet coordinates.
    pub fn with_box(points: &[Point], bbox: &Rect) -> Self {
        let mut grid = Self::from_points(points);
        assert_eq!(grid.dim(), bbox.dim(), "bounding box dimension mismatch");
        for h in 0..grid.dim() {
            grid.insert_coord(h, bbox.lo_at(h));
            grid.insert_coord(h, bbox.hi_at(h));
        }
        grid
    }

    /// Builds a grid directly from per-dimension coordinate lists.
    pub fn from_coords(mut coords: Vec<Vec<f64>>) -> Self {
        assert!(!coords.is_empty(), "grid must have dimension >= 1");
        for c in &mut coords {
            c.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN coordinate"));
            c.dedup();
            assert!(
                !c.is_empty(),
                "every dimension needs at least one coordinate"
            );
        }
        CoordGrid { coords }
    }

    fn insert_coord(&mut self, h: usize, x: f64) {
        debug_assert!(x.is_finite());
        match self.coords[h].binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(_) => {}
            Err(pos) => self.coords[h].insert(pos, x),
        }
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The finite coordinates of dimension `h`, strictly increasing.
    #[inline]
    pub fn coords(&self, h: usize) -> &[f64] {
        &self.coords[h]
    }

    /// Number of canonical rectangles `|R_i| = ∏_h m_h (m_h + 1) / 2`.
    pub fn rect_count(&self) -> u128 {
        self.coords
            .iter()
            .map(|c| {
                let m = c.len() as u128;
                m * (m + 1) / 2
            })
            .product()
    }

    /// Smallest finite coordinate `≥ x` in dimension `h`, or `+∞`.
    #[inline]
    pub fn next_geq(&self, h: usize, x: f64) -> f64 {
        let c = &self.coords[h];
        match c.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => c[i],
            Err(i) if i < c.len() => c[i],
            Err(_) => f64::INFINITY,
        }
    }

    /// Smallest finite coordinate `> x` in dimension `h`, or `+∞`.
    #[inline]
    pub fn next_gt(&self, h: usize, x: f64) -> f64 {
        let c = &self.coords[h];
        // partition_point gives the first index with c[i] > x.
        let i = c.partition_point(|v| *v <= x);
        if i < c.len() {
            c[i]
        } else {
            f64::INFINITY
        }
    }

    /// Largest finite coordinate `≤ x` in dimension `h`, or `-∞`.
    #[inline]
    pub fn prev_leq(&self, h: usize, x: f64) -> f64 {
        let c = &self.coords[h];
        let i = c.partition_point(|v| *v <= x);
        if i > 0 {
            c[i - 1]
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Largest finite coordinate `< x` in dimension `h`, or `-∞`.
    #[inline]
    pub fn prev_lt(&self, h: usize, x: f64) -> f64 {
        let c = &self.coords[h];
        let i = c.partition_point(|v| *v < x);
        if i > 0 {
            c[i - 1]
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Enumerates all canonical (combinatorially different) rectangles.
    ///
    /// The count is `rect_count()`; callers control it through the sample
    /// size (`s = Θ(ε⁻² log(Nφ⁻¹))` per the paper, `O(s^{2d})` rectangles).
    pub fn enumerate_rects(&self) -> Vec<Rect> {
        let d = self.dim();
        // Per-dimension (lo, hi) pairs with lo <= hi.
        let pairs: Vec<Vec<(f64, f64)>> = self
            .coords
            .iter()
            .map(|c| {
                let mut v = Vec::with_capacity(c.len() * (c.len() + 1) / 2);
                for i in 0..c.len() {
                    for j in i..c.len() {
                        v.push((c[i], c[j]));
                    }
                }
                v
            })
            .collect();
        let total: usize = pairs.iter().map(Vec::len).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; d];
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        'outer: loop {
            for h in 0..d {
                let (l, u) = pairs[h][idx[h]];
                lo[h] = l;
                hi[h] = u;
            }
            out.push(Rect::from_bounds(&lo, &hi));
            // Odometer increment.
            for h in 0..d {
                idx[h] += 1;
                if idx[h] < pairs[h].len() {
                    continue 'outer;
                }
                idx[h] = 0;
            }
            break;
        }
        out
    }

    /// The maximal canonical rectangle `ρ ⊆ R`, i.e. the unique grid
    /// rectangle with `ρ ∩ S = R ∩ S` whose facets are shrunk onto the grid.
    /// Returns `None` when no grid coordinate lies inside `R` in some
    /// dimension (then no canonical rectangle fits inside `R`).
    pub fn maximal_rect_in(&self, r: &Rect) -> Option<Rect> {
        debug_assert_eq!(self.dim(), r.dim());
        let d = self.dim();
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        for h in 0..d {
            let l = self.next_geq(h, r.lo_at(h));
            let u = self.prev_leq(h, r.hi_at(h));
            if l > u {
                return None;
            }
            lo[h] = l;
            hi[h] = u;
        }
        Some(Rect::from_bounds(&lo, &hi))
    }

    /// The one-step expansion `ρ̂` of a grid rectangle `ρ`: every facet
    /// pushed outward to the adjacent coordinate (±∞ when none). This is the
    /// rectangle `ρ̂_R` of Lemma 4.6, and `(ρ, ρ̂)` is always a canonical
    /// pair.
    pub fn one_step_expansion(&self, rho: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), rho.dim());
        let d = self.dim();
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        for h in 0..d {
            lo[h] = self.prev_lt(h, rho.lo_at(h));
            hi[h] = self.next_gt(h, rho.hi_at(h));
        }
        Rect::from_bounds(&lo, &hi)
    }

    /// Decides the canonical-pair condition of Algorithm 3 in closed form:
    /// `ρ ⊆ ρ̂` and there is **no** grid rectangle `ρ'` with `ρ ⊂ ρ' ⊂⊂ ρ̂`.
    ///
    /// Closed form: let `ρ*` be the maximal grid rectangle strictly inside
    /// `ρ̂` (facet-wise `next_gt(ρ̂⁻)` / `prev_lt(ρ̂⁺)`). A violating `ρ'`
    /// exists iff `ρ*` exists, contains `ρ`, and differs from `ρ`.
    pub fn is_canonical_pair(&self, rho: &Rect, rho_hat: &Rect) -> bool {
        debug_assert_eq!(self.dim(), rho.dim());
        debug_assert_eq!(self.dim(), rho_hat.dim());
        if !rho_hat.contains_rect(rho) {
            return false;
        }
        let d = self.dim();
        for h in 0..d {
            let lo_star = self.next_gt(h, rho_hat.lo_at(h));
            let hi_star = self.prev_lt(h, rho_hat.hi_at(h));
            // No grid rectangle strictly inside rho_hat in dimension h, or
            // the strictly-inside window cannot cover rho in dimension h:
            // then no violating rho' exists and the pair is canonical.
            if lo_star > hi_star || lo_star > rho.lo_at(h) || hi_star < rho.hi_at(h) {
                return true;
            }
        }
        // rho* exists and contains rho; the pair is canonical iff rho* == rho.
        (0..d).all(|h| {
            self.next_gt(h, rho_hat.lo_at(h)) == rho.lo_at(h)
                && self.prev_lt(h, rho_hat.hi_at(h)) == rho.hi_at(h)
        })
    }

    /// The *empty slabs* of dimension `h`: maximal open intervals between
    /// consecutive coordinates (with ±∞ guards at the ends). A query
    /// rectangle whose `h`-extent fits strictly inside an empty slab contains
    /// no grid coordinate in dimension `h`, hence no canonical rectangle.
    /// Used by the range-predicate index to handle the zero-mass corner case.
    pub fn empty_slabs(&self, h: usize) -> Vec<(f64, f64)> {
        let c = &self.coords[h];
        let mut out = Vec::with_capacity(c.len() + 1);
        let mut prev = f64::NEG_INFINITY;
        for &x in c {
            out.push((prev, x));
            prev = x;
        }
        out.push((prev, f64::INFINITY));
        out
    }

    /// True if `r` contains no grid coordinate in at least one dimension —
    /// equivalently, no canonical rectangle fits inside `r`.
    pub fn has_empty_dimension(&self, r: &Rect) -> bool {
        (0..self.dim()).any(|h| self.next_geq(h, r.lo_at(h)) > r.hi_at(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(xs: &[f64]) -> CoordGrid {
        CoordGrid::from_points(&xs.iter().map(|&x| Point::one(x)).collect::<Vec<_>>())
    }

    /// Brute-force version of the canonical-pair predicate, straight from the
    /// paper's definition, used to validate the closed form.
    fn is_canonical_pair_bruteforce(grid: &CoordGrid, rho: &Rect, rho_hat: &Rect) -> bool {
        if !rho_hat.contains_rect(rho) {
            return false;
        }
        !grid.enumerate_rects().iter().any(|rho_p| {
            rho_p.contains_rect(rho) && rho_p != rho && rho_hat.strictly_contains(rho_p)
        })
    }

    #[test]
    fn figure1_interval_enumeration() {
        // Paper Figure 1a: S1 = {1, 7, 9} yields 6 intervals.
        let g = grid_1d(&[1.0, 7.0, 9.0]);
        let rects = g.enumerate_rects();
        assert_eq!(rects.len(), 6);
        assert_eq!(g.rect_count(), 6);
        for (lo, hi) in [(1., 1.), (7., 7.), (9., 9.), (1., 7.), (1., 9.), (7., 9.)] {
            assert!(
                rects.contains(&Rect::interval(lo, hi)),
                "missing [{lo},{hi}]"
            );
        }
        // S2 = {2, 4, 6, 10} yields 10 intervals.
        let g2 = grid_1d(&[2.0, 4.0, 6.0, 10.0]);
        assert_eq!(g2.enumerate_rects().len(), 10);
    }

    #[test]
    fn duplicate_coordinates_are_deduped() {
        let g = grid_1d(&[5.0, 5.0, 5.0, 1.0]);
        assert_eq!(g.coords(0), &[1.0, 5.0]);
        assert_eq!(g.enumerate_rects().len(), 3);
    }

    #[test]
    fn successor_predecessor_lookups() {
        let g = grid_1d(&[2.0, 4.0, 6.0, 10.0]);
        assert_eq!(g.next_geq(0, 4.0), 4.0);
        assert_eq!(g.next_gt(0, 4.0), 6.0);
        assert_eq!(g.prev_leq(0, 4.0), 4.0);
        assert_eq!(g.prev_lt(0, 4.0), 2.0);
        assert_eq!(g.next_gt(0, 10.0), f64::INFINITY);
        assert_eq!(g.prev_lt(0, 2.0), f64::NEG_INFINITY);
        assert_eq!(g.next_geq(0, 3.0), 4.0);
        assert_eq!(g.prev_leq(0, 3.0), 2.0);
    }

    #[test]
    fn maximal_rect_matches_running_example() {
        // R = [3, 8] over S2 = {2, 4, 6, 10}: maximal interval is [4, 6].
        let g = grid_1d(&[2.0, 4.0, 6.0, 10.0]);
        let max = g.maximal_rect_in(&Rect::interval(3.0, 8.0)).unwrap();
        assert_eq!(max, Rect::interval(4.0, 6.0));
        // Over S1 = {1, 7, 9}: maximal interval is [7, 7].
        let g1 = grid_1d(&[1.0, 7.0, 9.0]);
        let max1 = g1.maximal_rect_in(&Rect::interval(3.0, 8.0)).unwrap();
        assert_eq!(max1, Rect::interval(7.0, 7.0));
        // A query between coordinates has no canonical rectangle.
        assert!(g1.maximal_rect_in(&Rect::interval(2.0, 6.0)).is_none());
        assert!(g1.has_empty_dimension(&Rect::interval(2.0, 6.0)));
        assert!(!g1.has_empty_dimension(&Rect::interval(3.0, 8.0)));
    }

    #[test]
    fn one_step_expansion_matches_lemma_4_6() {
        // Running example in Section 4.3: the pair ([7,7], [1,9]) is stored
        // for S1; [1, 9] is exactly the one-step expansion of [7, 7].
        let g1 = grid_1d(&[1.0, 7.0, 9.0]);
        let exp = g1.one_step_expansion(&Rect::interval(7.0, 7.0));
        assert_eq!(exp, Rect::interval(1.0, 9.0));
        // ([4,6], [2,10]) for S2.
        let g2 = grid_1d(&[2.0, 4.0, 6.0, 10.0]);
        let exp2 = g2.one_step_expansion(&Rect::interval(4.0, 6.0));
        assert_eq!(exp2, Rect::interval(2.0, 10.0));
        // Expanding past the extreme coordinates gives ±∞ facets.
        let exp3 = g2.one_step_expansion(&Rect::interval(2.0, 10.0));
        assert_eq!(exp3.lo_at(0), f64::NEG_INFINITY);
        assert_eq!(exp3.hi_at(0), f64::INFINITY);
    }

    #[test]
    fn canonical_pair_examples_from_paper() {
        let g1 = grid_1d(&[1.0, 7.0, 9.0]);
        // ([7,7],[1,9]) is canonical: [7,9] is not strictly inside [1,9].
        assert!(g1.is_canonical_pair(&Rect::interval(7.0, 7.0), &Rect::interval(1.0, 9.0)));
        let g2 = grid_1d(&[2.0, 4.0, 6.0, 10.0]);
        // ([4,6],[2,10]) is canonical.
        assert!(g2.is_canonical_pair(&Rect::interval(4.0, 6.0), &Rect::interval(2.0, 10.0)));
        // ([6,6],[2,10]) is NOT: [4,6] sits strictly between.
        assert!(!g2.is_canonical_pair(&Rect::interval(6.0, 6.0), &Rect::interval(2.0, 10.0)));
    }

    #[test]
    fn canonical_pair_closed_form_matches_bruteforce_1d() {
        let g = grid_1d(&[1.0, 3.0, 5.0, 8.0, 13.0]);
        let rects = g.enumerate_rects();
        for rho in &rects {
            for rho_hat in &rects {
                assert_eq!(
                    g.is_canonical_pair(rho, rho_hat),
                    is_canonical_pair_bruteforce(&g, rho, rho_hat),
                    "mismatch for rho={rho:?} rho_hat={rho_hat:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_pair_closed_form_matches_bruteforce_2d() {
        let pts: Vec<Point> = vec![
            Point::two(1.0, 2.0),
            Point::two(3.0, 1.0),
            Point::two(5.0, 4.0),
        ];
        let g = CoordGrid::from_points(&pts);
        let rects = g.enumerate_rects();
        assert_eq!(rects.len(), 36); // (3*4/2)^2
        let mut canonical = 0;
        for rho in &rects {
            for rho_hat in &rects {
                let fast = g.is_canonical_pair(rho, rho_hat);
                let slow = is_canonical_pair_bruteforce(&g, rho, rho_hat);
                assert_eq!(fast, slow, "mismatch for rho={rho:?} rho_hat={rho_hat:?}");
                canonical += usize::from(fast);
            }
        }
        assert!(canonical > 0);
    }

    #[test]
    fn one_step_expansion_is_always_canonical() {
        let pts: Vec<Point> = vec![
            Point::two(1.0, 2.0),
            Point::two(3.0, 1.0),
            Point::two(5.0, 4.0),
            Point::two(2.0, 6.0),
        ];
        let g = CoordGrid::from_points(&pts);
        for rho in g.enumerate_rects() {
            let hat = g.one_step_expansion(&rho);
            assert!(
                g.is_canonical_pair(&rho, &hat),
                "one-step expansion not canonical for {rho:?} -> {hat:?}"
            );
        }
    }

    #[test]
    fn with_box_adds_facet_coordinates() {
        let pts = vec![Point::two(1.0, 2.0), Point::two(3.0, 4.0)];
        let bbox = Rect::from_bounds(&[0.0, 0.0], &[10.0, 10.0]);
        let g = CoordGrid::with_box(&pts, &bbox);
        assert_eq!(g.coords(0), &[0.0, 1.0, 3.0, 10.0]);
        assert_eq!(g.coords(1), &[0.0, 2.0, 4.0, 10.0]);
    }

    #[test]
    fn empty_slabs_cover_the_line() {
        let g = grid_1d(&[2.0, 4.0]);
        let slabs = g.empty_slabs(0);
        assert_eq!(
            slabs,
            vec![(f64::NEG_INFINITY, 2.0), (2.0, 4.0), (4.0, f64::INFINITY)]
        );
    }
}
