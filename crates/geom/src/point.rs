//! Points in `R^d` with runtime dimension.

use std::fmt;
use std::ops::{Deref, Index};

/// A point in `R^d`. The dimension is a runtime value but is expected to be a
/// small constant (`d = O(1)` throughout the paper).
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty: the paper's structures are defined for
    /// `d ≥ 1`.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "points must have dimension >= 1");
        Point { coords }
    }

    /// Creates a 1-dimensional point.
    pub fn one(x: f64) -> Self {
        Point { coords: vec![x] }
    }

    /// Creates a 2-dimensional point.
    pub fn two(x: f64, y: f64) -> Self {
        Point { coords: vec![x, y] }
    }

    /// The dimension `d` of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The `h`-th coordinate.
    #[inline]
    pub fn coord(&self, h: usize) -> f64 {
        self.coords[h]
    }

    /// Borrow the coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point and returns its coordinate vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.coords
    }

    /// Inner product `⟨self, v⟩` — the *score* `ω(p, v)` of the paper
    /// (Section 1.2, preference measure functions).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, v: &[f64]) -> f64 {
        assert_eq!(
            self.coords.len(),
            v.len(),
            "dimension mismatch in dot product"
        );
        self.coords.iter().zip(v).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in distance");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Returns the point scaled by `s`.
    pub fn scaled(&self, s: f64) -> Point {
        Point {
            coords: self.coords.iter().map(|c| c * s).collect(),
        }
    }

    /// Returns a unit-norm copy of the point.
    ///
    /// # Panics
    /// Panics if the point is the origin.
    pub fn normalized(&self) -> Point {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the origin");
        self.scaled(1.0 / n)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl Index<usize> for Point {
    type Output = f64;
    #[inline]
    fn index(&self, h: usize) -> &f64 {
        &self.coords[h]
    }
}

impl Deref for Point {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_coords() {
        let p = Point::two(3.0, 4.0);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p[1], 4.0);
    }

    #[test]
    fn dot_and_norm() {
        let p = Point::two(3.0, 4.0);
        assert_eq!(p.dot(&[1.0, 0.0]), 3.0);
        assert_eq!(p.norm(), 5.0);
        let u = p.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::two(0.0, 0.0);
        let b = Point::two(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    #[should_panic]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_panics() {
        let _ = Point::one(1.0).dot(&[1.0, 2.0]);
    }
}
