//! Geometric substrate for distribution-aware dataset search.
//!
//! This crate provides the low-level geometry the paper's data structures are
//! built from (Section 2 of the paper):
//!
//! * [`Point`] — points in `R^d` with a small runtime dimension.
//! * [`Rect`] — axis-parallel hyper-rectangles, including orthants (one or
//!   both bounds at ±∞) and the strict-containment relation `⊂⊂` used by the
//!   range-predicate structure (Section 4.3).
//! * [`CoordGrid`] — the per-dimension coordinate sets induced by a sample,
//!   with predecessor/successor lookups, enumeration of all combinatorially
//!   different rectangles, maximal-rectangle queries and one-step expansions.
//! * [`EpsNet`] — a centrally symmetric ε-net of unit vectors on `S^{d-1}`
//!   (Section 2, used by the Pref structures of Section 5).
//!
//! Everything here is deterministic and allocation-conscious; the paper's
//! index structures (crate `dds-core`) compose these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epsnet;
mod grid;
mod point;
mod rect;

pub use epsnet::EpsNet;
pub use grid::CoordGrid;
pub use point::Point;
pub use rect::Rect;

/// Returns `true` if two floating point values are equal up to `1e-12`
/// absolute tolerance. Used by tests and degenerate-geometry checks.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
}
