//! Axis-parallel hyper-rectangles and orthants.

use crate::Point;
use std::fmt;

/// An axis-parallel hyper-rectangle `R = [lo_1, hi_1] × … × [lo_d, hi_d]`.
///
/// Bounds may be infinite, so the same type represents *orthants* (open
/// rectangles defined by a single corner, Section 2 of the paper). A
/// rectangle is always *valid*: `lo_h ≤ hi_h` for every dimension `h`.
#[derive(Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from its two opposite corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensions, are empty, or if
    /// `lo_h > hi_h` for some `h`.
    pub fn from_bounds(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimension mismatch");
        assert!(!lo.is_empty(), "rectangles must have dimension >= 1");
        for h in 0..lo.len() {
            assert!(
                lo[h] <= hi[h],
                "invalid rectangle: lo[{h}] = {} > hi[{h}] = {}",
                lo[h],
                hi[h]
            );
        }
        Rect {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        }
    }

    /// Creates the 1-dimensional rectangle (interval) `[lo, hi]`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Rect::from_bounds(&[lo], &[hi])
    }

    /// The rectangle covering all of `R^d`.
    pub fn full(dim: usize) -> Self {
        Rect {
            lo: vec![f64::NEG_INFINITY; dim],
            hi: vec![f64::INFINITY; dim],
        }
    }

    /// The smallest rectangle containing every point of `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn bounding(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bounding box of an empty set");
        let d = points[0].dim();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for p in points {
            assert_eq!(p.dim(), d, "mixed dimensions in bounding box");
            for h in 0..d {
                lo[h] = lo[h].min(p[h]);
                hi[h] = hi[h].max(p[h]);
            }
        }
        Rect { lo, hi }
    }

    /// The dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner `R^-`.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner `R^+`.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// `R^-_h`.
    #[inline]
    pub fn lo_at(&self, h: usize) -> f64 {
        self.lo[h]
    }

    /// `R^+_h`.
    #[inline]
    pub fn hi_at(&self, h: usize) -> f64 {
        self.hi[h]
    }

    /// True if the (closed) rectangle contains `p`.
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((lo, hi), x)| *lo <= *x && *x <= *hi)
    }

    /// True if `other ⊆ self` (closed containment; boundaries may touch).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|h| self.lo[h] <= other.lo[h] && other.hi[h] <= self.hi[h])
    }

    /// The strict containment `other ⊂⊂ self` of Section 4.3: `other ⊂ self`
    /// and the boundary of `other` does not intersect the boundary of
    /// `self` — i.e. every facet of `other` is strictly inside `self`.
    #[inline]
    pub fn strictly_contains(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|h| self.lo[h] < other.lo[h] && other.hi[h] < self.hi[h])
    }

    /// True if the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|h| self.lo[h] <= other.hi[h] && other.lo[h] <= self.hi[h])
    }

    /// Counts the points of `points` inside the rectangle. This is the
    /// numerator of the percentile measure function `M_R(P) = |R ∩ P| / |P|`.
    pub fn count_inside(&self, points: &[Point]) -> usize {
        points.iter().filter(|p| self.contains_point(p)).count()
    }

    /// The percentile measure `M_R(P) = |R ∩ P| / |P|` of a point set.
    ///
    /// Returns 0 for an empty set (the paper only applies measure functions
    /// where they are well-defined; 0 is a safe total extension for tooling).
    pub fn mass(&self, points: &[Point]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        self.count_inside(points) as f64 / points.len() as f64
    }

    /// Volume of the rectangle (`∞` if unbounded, 0 if degenerate).
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|h| self.hi[h] - self.lo[h]).product()
    }

    /// The center point. Meaningful only for bounded rectangles.
    pub fn center(&self) -> Point {
        Point::new(
            (0..self.dim())
                .map(|h| 0.5 * (self.lo[h] + self.hi[h]))
                .collect(),
        )
    }

    /// Returns `self` grown by `margin` on every side.
    pub fn padded(&self, margin: f64) -> Rect {
        assert!(margin >= 0.0, "padding must be non-negative");
        Rect {
            lo: self.lo.iter().map(|x| x - margin).collect(),
            hi: self.hi.iter().map(|x| x + margin).collect(),
        }
    }

    /// Intersection of two rectangles, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let lo: Vec<f64> = (0..self.dim())
            .map(|h| self.lo[h].max(other.lo[h]))
            .collect();
        let hi: Vec<f64> = (0..self.dim())
            .map(|h| self.hi[h].min(other.hi[h]))
            .collect();
        Some(Rect { lo, hi })
    }

    /// The fraction of this rectangle's volume covered by `other`
    /// (0 if disjoint; 1 if `self ⊆ other`). Used by histogram synopses to
    /// apportion cell mass. Degenerate (zero-volume) rectangles count as
    /// fully covered when they intersect `other`.
    pub fn overlap_fraction(&self, other: &Rect) -> f64 {
        match self.intersection(other) {
            None => 0.0,
            Some(inter) => {
                let v = self.volume();
                if v == 0.0 || !v.is_finite() {
                    1.0
                } else {
                    (inter.volume() / v).clamp(0.0, 1.0)
                }
            }
        }
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R[")?;
        for h in 0..self.dim() {
            if h > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{}, {}]", self.lo[h], self.hi[h])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_closed() {
        let outer = Rect::from_bounds(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = Rect::from_bounds(&[0.0, 2.0], &[5.0, 8.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        // Touching boundary: contained but not strictly.
        assert!(!outer.strictly_contains(&inner));
    }

    #[test]
    fn strict_containment_requires_all_facets_inside() {
        let outer = Rect::from_bounds(&[0.0, 0.0], &[10.0, 10.0]);
        let strict = Rect::from_bounds(&[1.0, 1.0], &[9.0, 9.0]);
        let touch_one = Rect::from_bounds(&[1.0, 0.0], &[9.0, 9.0]);
        assert!(outer.strictly_contains(&strict));
        assert!(!outer.strictly_contains(&touch_one));
        assert!(outer.contains_rect(&touch_one));
    }

    #[test]
    fn point_membership_includes_boundary() {
        let r = Rect::interval(1.0, 3.0);
        assert!(r.contains_point(&[1.0]));
        assert!(r.contains_point(&[3.0]));
        assert!(!r.contains_point(&[3.0001]));
    }

    #[test]
    fn mass_matches_paper_running_example() {
        // Figure 1: S2 = {2, 4, 6, 10}, R = [3, 8] -> mass 2/4.
        let s2: Vec<Point> = [2.0, 4.0, 6.0, 10.0]
            .iter()
            .map(|&x| Point::one(x))
            .collect();
        let r = Rect::interval(3.0, 8.0);
        assert_eq!(r.count_inside(&s2), 2);
        assert!((r.mass(&s2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn orthant_with_infinite_bounds() {
        let orthant = Rect::from_bounds(&[3.0, f64::NEG_INFINITY], &[f64::INFINITY, 8.0]);
        assert!(orthant.contains_point(&[100.0, -100.0]));
        assert!(!orthant.contains_point(&[2.0, 0.0]));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Rect::from_bounds(&[0.0, 0.0], &[4.0, 4.0]);
        let b = Rect::from_bounds(&[2.0, 2.0], &[6.0, 6.0]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::from_bounds(&[2.0, 2.0], &[4.0, 4.0]));
        assert!((a.overlap_fraction(&b) - 0.25).abs() < 1e-12);
        let far = Rect::from_bounds(&[10.0, 10.0], &[11.0, 11.0]);
        assert_eq!(a.intersection(&far), None);
        assert_eq!(a.overlap_fraction(&far), 0.0);
    }

    #[test]
    fn bounding_box() {
        let pts = vec![
            Point::two(1.0, 5.0),
            Point::two(-2.0, 3.0),
            Point::two(0.0, 7.0),
        ];
        let b = Rect::bounding(&pts);
        assert_eq!(b, Rect::from_bounds(&[-2.0, 3.0], &[1.0, 7.0]));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = Rect::interval(2.0, 1.0);
    }
}
