//! Centrally symmetric ε-nets on the unit sphere `S^{d-1}`.
//!
//! Section 2 of the paper: a centrally symmetric set `C ⊆ S^{d-1}` of
//! `O(ε^{-d+1})` unit vectors such that every unit vector has a net vector at
//! distance `O(ε)`. The Pref structures (Section 5) evaluate synopses on the
//! net vectors at build time and snap query vectors to their nearest net
//! vector, paying an additive `ε` in score by Lemma 5.1.
//!
//! Construction (standard, cf. [3] in the paper): place a symmetric grid on
//! every facet of the cube `[-1, 1]^d` and centrally project onto the
//! sphere. For a unit `v`, the facet point `w = v / ‖v‖_∞` is within grid
//! step `Δ/2` per coordinate of some grid point `g`, and
//! `‖g/‖g‖ − v‖ ≤ 2‖g − w‖ ≤ Δ·sqrt(d−1)`, so `Δ = ε/sqrt(d)` suffices.

use crate::Point;
use std::collections::BTreeSet;

/// A centrally symmetric ε-net of unit vectors.
#[derive(Clone, Debug)]
pub struct EpsNet {
    dim: usize,
    eps: f64,
    vectors: Vec<Point>,
}

impl EpsNet {
    /// Builds an ε-net on `S^{dim-1}`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `eps` is not in `(0, 1)`.
    pub fn new(dim: usize, eps: f64) -> Self {
        assert!(dim >= 1, "eps-net requires dim >= 1");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let vectors = match dim {
            1 => vec![Point::one(1.0), Point::one(-1.0)],
            _ => Self::cube_facet_net(dim, eps),
        };
        EpsNet { dim, eps, vectors }
    }

    fn cube_facet_net(dim: usize, eps: f64) -> Vec<Point> {
        // Symmetric grid of (2k+1) values on [-1, 1] with step <= eps/sqrt(d).
        let step = eps / (dim as f64).sqrt();
        let k = (1.0 / step).ceil() as usize;
        let levels: Vec<f64> = (0..=2 * k)
            .map(|i| (i as f64 - k as f64) / k as f64)
            .collect();
        let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut out = Vec::new();
        // For every facet (axis, sign), grid the remaining d-1 coordinates.
        for axis in 0..dim {
            for sign in [-1.0, 1.0] {
                let free = dim - 1;
                let mut idx = vec![0usize; free];
                loop {
                    let mut coords = Vec::with_capacity(dim);
                    let mut it = idx.iter();
                    for h in 0..dim {
                        if h == axis {
                            coords.push(sign);
                        } else {
                            coords.push(levels[*it.next().expect("index arity")]);
                        }
                    }
                    let p = Point::new(coords).normalized();
                    let key: Vec<u64> = p.iter().map(|c| c.to_bits()).collect();
                    if seen.insert(key) {
                        out.push(p);
                    }
                    // Odometer over the free coordinates.
                    let mut h = 0;
                    loop {
                        if h == free {
                            break;
                        }
                        idx[h] += 1;
                        if idx[h] < levels.len() {
                            break;
                        }
                        idx[h] = 0;
                        h += 1;
                    }
                    if h == free {
                        break;
                    }
                }
            }
        }
        out
    }

    /// The ambient dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The covering parameter ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of net vectors (`O(ε^{-d+1})`).
    #[inline]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the net is empty (never the case for a valid net).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The net vectors.
    #[inline]
    pub fn vectors(&self) -> &[Point] {
        &self.vectors
    }

    /// The net vector closest (in Euclidean distance) to the unit vector
    /// `v`, together with its index. Linear scan over the net — `O(ε^{-d+1})`
    /// as in the paper's query procedure (Algorithm 6, line 1).
    pub fn nearest(&self, v: &[f64]) -> (usize, &Point) {
        assert_eq!(v.len(), self.dim, "query vector dimension mismatch");
        let mut best = 0usize;
        let mut best_dot = f64::NEG_INFINITY;
        for (i, u) in self.vectors.iter().enumerate() {
            // For unit vectors, minimizing ‖u − v‖ = maximizing ⟨u, v⟩.
            let d = u.dot(v);
            if d > best_dot {
                best_dot = d;
                best = i;
            }
        }
        (best, &self.vectors[best])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unit(rng: &mut StdRng, d: usize) -> Vec<f64> {
        loop {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if n > 1e-3 {
                return v.iter().map(|x| x / n).collect();
            }
        }
    }

    #[test]
    fn d1_net_is_pm_one() {
        let net = EpsNet::new(1, 0.1);
        assert_eq!(net.len(), 2);
        let (_, u) = net.nearest(&[-0.7]);
        assert_eq!(u.as_slice(), &[-1.0]);
    }

    #[test]
    fn all_vectors_are_unit() {
        for d in [2, 3] {
            let net = EpsNet::new(d, 0.3);
            for u in net.vectors() {
                assert!((u.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn net_is_centrally_symmetric() {
        for d in [1, 2, 3] {
            let net = EpsNet::new(d, 0.4);
            for u in net.vectors() {
                let neg: Vec<f64> = u.iter().map(|c| -c).collect();
                let found = net
                    .vectors()
                    .iter()
                    .any(|w| w.iter().zip(&neg).all(|(a, b)| (a - b).abs() < 1e-9));
                assert!(found, "missing antipode of {u:?} in d={d}");
            }
        }
    }

    #[test]
    fn covering_property_holds_on_random_vectors() {
        let mut rng = StdRng::seed_from_u64(7);
        for (d, eps) in [(2usize, 0.2f64), (2, 0.05), (3, 0.3)] {
            let net = EpsNet::new(d, eps);
            for _ in 0..500 {
                let v = random_unit(&mut rng, d);
                let (_, u) = net.nearest(&v);
                let dist: f64 = u
                    .iter()
                    .zip(&v)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    dist <= eps + 1e-9,
                    "covering violated: d={d} eps={eps} dist={dist}"
                );
            }
        }
    }

    #[test]
    fn net_size_scales_with_eps() {
        let coarse = EpsNet::new(2, 0.5).len();
        let fine = EpsNet::new(2, 0.05).len();
        assert!(fine > coarse, "finer nets must have more vectors");
        // d=2 nets should stay linear in 1/eps (O(eps^-1)).
        assert!(fine < 100 * coarse);
    }

    #[test]
    fn nearest_picks_the_true_argmin() {
        let net = EpsNet::new(2, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = random_unit(&mut rng, 2);
            let (i, _) = net.nearest(&v);
            let best_brute = net
                .vectors()
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f64 = a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum();
                    let db: f64 = b.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap()
                .0;
            let di: f64 = net.vectors()[i]
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let db: f64 = net.vectors()[best_brute]
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            assert!((di - db).abs() < 1e-12);
        }
    }
}
