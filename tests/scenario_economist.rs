//! End-to-end run of Example 1.1 (the economist): percentile search for
//! cities with enough incidents in a target region, and preference search
//! for cities with k high quality-of-life neighborhoods.

mod common;

use common::sorted;
use dds_core::framework::Repository;
use dds_core::pref::{PrefBuildParams, PrefIndex};
use dds_core::ptile::{PtileBuildParams, PtileThresholdIndex};
use dds_workload::CityScenario;

#[test]
fn percentile_query_finds_focused_cities() {
    let sc = CityScenario::generate(24, 300, 0.15, 501);
    let repo = Repository::from_point_sets(sc.incidents.clone());
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    // "at least 10% of the data points from Brooklyn" — Example 1.1.
    let hits = idx.query(&sc.brooklyn, 0.10);
    // Every focused city (engineered ≥ 15%) must be found.
    for &c in &sc.focused_cities {
        assert!(hits.contains(&c), "missed focused city {c}");
    }
    // Everything reported is within the guarantee band.
    for &j in &hits {
        let mass = sc.brooklyn.mass(&sc.incidents[j]);
        assert!(
            mass >= 0.10 - idx.slack() - 1e-9,
            "city {j} reported with mass {mass:.3}"
        );
    }
}

#[test]
fn preference_query_finds_high_quality_cities() {
    let sc = CityScenario::generate(24, 200, 0.15, 511);
    let repo = Repository::from_point_sets(sc.quality.clone());
    let k = 5; // "at least k neighborhoods with high quality of life"
    let idx = PrefIndex::build(
        &repo.exact_synopses(),
        k,
        PrefBuildParams::exact_centralized(),
    );
    // Equal-weight quality-of-life direction.
    let s3 = 1.0 / 3.0f64.sqrt();
    let v = vec![s3, s3, s3];
    let tau = 0.25;
    let hits = idx.query(&v, tau);
    // Ground truth + band checks.
    for (i, hoods) in sc.quality.iter().enumerate() {
        let score = dds_workload::queries::exact_kth_score(hoods, &v, k);
        if score >= tau {
            assert!(hits.contains(&i), "missed qualifying city {i}");
        }
    }
    for &j in &hits {
        let score = dds_workload::queries::exact_kth_score(&sc.quality[j], &v, k);
        assert!(score >= tau - idx.slack() - 1e-9, "city {j} out of band");
    }
    // Focused (high-crime) cities are biased to lower quality: at this
    // threshold the answer should skew towards unfocused cities.
    let focused_hits = hits
        .iter()
        .filter(|j| sc.focused_cities.contains(j))
        .count();
    assert!(
        focused_hits * 2 <= hits.len().max(1),
        "focused cities dominate a high-quality query unexpectedly"
    );
}

#[test]
fn combined_discovery_workflow() {
    // The economist's full workflow: find datasets with regional coverage,
    // then rank the same cities by quality — the intersection drives the
    // final analysis.
    let sc = CityScenario::generate(16, 250, 0.2, 521);
    let incidents = Repository::from_point_sets(sc.incidents.clone());
    let quality = Repository::from_point_sets(sc.quality.clone());
    let ptile = PtileThresholdIndex::build(
        &incidents.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let pref = PrefIndex::build(
        &quality.exact_synopses(),
        3,
        PrefBuildParams::exact_centralized(),
    );
    let coverage = sorted(ptile.query(&sc.brooklyn, 0.1));
    let s3 = 1.0 / 3.0f64.sqrt();
    let livable = sorted(pref.query(&[s3, s3, s3], 0.0));
    let both: Vec<usize> = coverage
        .iter()
        .filter(|c| livable.contains(c))
        .copied()
        .collect();
    // The workflow must produce a deterministic, reproducible answer.
    let coverage2 = sorted(ptile.query(&sc.brooklyn, 0.1));
    assert_eq!(coverage, coverage2);
    assert!(both.len() <= coverage.len());
}
