//! Property-based tests (proptest) on the paper's core invariants, over
//! arbitrary small repositories and queries.

mod common;

use common::sorted;
use dds_core::framework::{Interval, Repository};
use dds_core::pref::{PrefBuildParams, PrefIndex};
use dds_core::ptile::{ExactCPtile1D, PtileBuildParams, PtileRangeIndex, PtileThresholdIndex};
use dds_geom::{CoordGrid, Point, Rect};
use dds_synopsis::ExactSynopsis;
use proptest::prelude::*;

/// Strategy: a repository of 1-d datasets with coordinates on a small
/// integer grid (maximizing ties and boundary cases).
fn repo_1d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((-20i32..20).prop_map(|x| x as f64), 1..12),
        1..8,
    )
}

/// Strategy: a query interval with integer-ish bounds.
fn query_interval() -> impl Strategy<Value = (f64, f64)> {
    ((-25i32..25), (0i32..20)).prop_map(|(lo, w)| (lo as f64, (lo + w) as f64))
}

fn synopses_of(sets: &[Vec<f64>]) -> Vec<ExactSynopsis> {
    sets.iter()
        .map(|xs| ExactSynopsis::new(xs.iter().map(|&x| Point::one(x)).collect()))
        .collect()
}

fn brute_ptile(sets: &[Vec<f64>], lo: f64, hi: f64, theta: Interval) -> Vec<usize> {
    sets.iter()
        .enumerate()
        .filter(|(_, xs)| {
            let cnt = xs.iter().filter(|&&x| lo <= x && x <= hi).count();
            theta.contains(cnt as f64 / xs.len() as f64)
        })
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With tiny exact supports (ε = δ = 0) the threshold index IS exact.
    #[test]
    fn threshold_index_exact_on_small_supports(
        sets in repo_1d(),
        (lo, hi) in query_interval(),
        a_pct in 0u32..=100,
    ) {
        let a = a_pct as f64 / 100.0;
        let syns = synopses_of(&sets);
        let idx = PtileThresholdIndex::build(&syns, PtileBuildParams::exact_centralized());
        prop_assert_eq!(idx.eps(), 0.0);
        let got = sorted(idx.query(&Rect::interval(lo, hi), a));
        // a == 0 is the report-everything band; the guarantee allows it.
        if a == 0.0 {
            prop_assert_eq!(got.len(), sets.len());
        } else {
            let want = brute_ptile(&sets, lo, hi, Interval::new(a, 1.0));
            prop_assert_eq!(got, want);
        }
    }

    /// Range index with exact supports: exact answers for positive bands,
    /// superset-with-band semantics always.
    #[test]
    fn range_index_exact_on_small_supports(
        sets in repo_1d(),
        (lo, hi) in query_interval(),
        a_pct in 1u32..=90,
        w_pct in 0u32..=50,
    ) {
        let a = a_pct as f64 / 100.0;
        let b = (a + w_pct as f64 / 100.0).min(1.0);
        let syns = synopses_of(&sets);
        let idx = PtileRangeIndex::build(&syns, PtileBuildParams::exact_centralized());
        prop_assert_eq!(idx.eps(), 0.0);
        let theta = Interval::new(a, b);
        let got = sorted(idx.query(&Rect::interval(lo, hi), theta));
        let want = brute_ptile(&sets, lo, hi, theta);
        prop_assert_eq!(got, want);
    }

    /// The exact 1-d structure equals brute force for every θ and query.
    #[test]
    fn exact1d_always_exact(
        sets in repo_1d(),
        (lo, hi) in query_interval(),
        a_pct in 0u32..=100,
        w_pct in 0u32..=100,
    ) {
        let a = a_pct as f64 / 100.0;
        let b = (a + w_pct as f64 / 100.0).min(1.0);
        let repo = Repository::from_point_sets(
            sets.iter()
                .map(|xs| xs.iter().map(|&x| Point::one(x)).collect())
                .collect(),
        );
        let theta = Interval::new(a, b);
        let idx = ExactCPtile1D::build(&repo, theta);
        let got = sorted(idx.query(lo, hi));
        let want = brute_ptile(&sets, lo, hi, theta);
        prop_assert_eq!(got, want);
    }

    /// Canonical grid invariants: the maximal rectangle inside any query
    /// has the same sample intersection as the query, and its one-step
    /// expansion strictly contains the query's core.
    #[test]
    fn maximal_rect_invariants(
        xs in prop::collection::vec((-20i32..20).prop_map(|x| x as f64), 1..15),
        (lo, hi) in query_interval(),
    ) {
        let pts: Vec<Point> = xs.iter().map(|&x| Point::one(x)).collect();
        let grid = CoordGrid::from_points(&pts);
        let r = Rect::interval(lo, hi);
        match grid.maximal_rect_in(&r) {
            Some(max) => {
                prop_assert!(r.contains_rect(&max));
                prop_assert_eq!(max.count_inside(&pts), r.count_inside(&pts));
                let hat = grid.one_step_expansion(&max);
                prop_assert!(hat.strictly_contains(&r) || hat.contains_rect(&r));
                prop_assert!(grid.is_canonical_pair(&max, &hat));
            }
            None => {
                prop_assert_eq!(r.count_inside(&pts), 0);
                prop_assert!(grid.has_empty_dimension(&r));
            }
        }
    }

    /// Pref recall: every dataset whose true ω_k clears the threshold is
    /// reported; every report is within the 2ε band.
    #[test]
    fn pref_recall_and_band(
        sets in prop::collection::vec(
            prop::collection::vec((-100i32..100, -100i32..100), 1..10),
            1..8,
        ),
        vx in -100i32..100,
        vy in -100i32..100,
        k in 1usize..4,
        a_raw in -100i32..100,
    ) {
        prop_assume!(vx != 0 || vy != 0);
        let n = ((vx * vx + vy * vy) as f64).sqrt();
        let v = [vx as f64 / n, vy as f64 / n];
        let a = a_raw as f64 / 100.0;
        // Scale points into the unit ball.
        let datasets: Vec<Vec<Point>> = sets
            .iter()
            .map(|ps| {
                ps.iter()
                    .map(|&(x, y)| Point::two(x as f64 / 150.0, y as f64 / 150.0))
                    .collect()
            })
            .collect();
        let syns: Vec<ExactSynopsis> =
            datasets.iter().map(|d| ExactSynopsis::new(d.clone())).collect();
        let idx = PrefIndex::build(&syns, k, PrefBuildParams::exact_centralized());
        let hits = idx.query(&v, a);
        for (i, d) in datasets.iter().enumerate() {
            let score = dds_workload::queries::exact_kth_score(d, &v, k);
            if score >= a {
                prop_assert!(hits.contains(&i), "missed {} (score {})", i, score);
            }
        }
        for &j in &hits {
            let score = dds_workload::queries::exact_kth_score(&datasets[j], &v, k);
            prop_assert!(score >= a - idx.slack() - 1e-9, "band violated for {}", j);
        }
    }

    /// Interval algebra sanity.
    #[test]
    fn interval_widening_monotone(a in 0.0f64..0.9, w in 0.0f64..0.1, s in 0.0f64..0.5) {
        let t = Interval::new(a, a + w);
        let wde = t.widened(s);
        prop_assert!(wde.lo <= t.lo && wde.hi >= t.hi);
        prop_assert!(wde.contains(a) && wde.contains(a + w));
    }
}
