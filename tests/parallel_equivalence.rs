//! Parallel-equivalence test layer: for every index family, building on the
//! worker pool with any thread count produces **bit-identical** structures
//! to the serial build — same query answers (including enumeration order),
//! same guarantee bands, same memory accounting. This is the contract that
//! lets `BuildOptions::default()` use every core unconditionally.

mod common;

use common::mixed_repo;
use dds_core::framework::Repository;
use distribution_aware_search::prelude::*;
use proptest::prelude::*;

/// The thread counts the determinism contract is pinned against.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn synopses_1d(sets: &[Vec<f64>]) -> Vec<dds_synopsis::ExactSynopsis> {
    sets.iter()
        .map(|xs| dds_synopsis::ExactSynopsis::new(xs.iter().map(|&x| Point::one(x)).collect()))
        .collect()
}

/// Generated case: datasets, query interval `(lo, hi)`, band `(a, b)`.
type PtileCase = (Vec<Vec<f64>>, (f64, f64), (f64, f64));

/// Strategy: a small 1-d repository on an integer grid (ties and boundary
/// cases), plus one query interval and a percentile band.
fn repo_and_query() -> impl Strategy<Value = PtileCase> {
    (
        prop::collection::vec(
            prop::collection::vec((-20i32..20).prop_map(|x| x as f64), 1..12),
            1..8,
        ),
        ((-25i32..25), (0i32..20)).prop_map(|(lo, w)| (lo as f64, (lo + w) as f64)),
        ((0u32..=100), (0u32..=100)).prop_map(|(a, w)| {
            let lo = a as f64 / 100.0;
            (lo, (lo + w as f64 / 100.0).min(1.0))
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ptile family: range, threshold and multi-predicate structures agree
    /// with their serial builds for every thread count.
    #[test]
    fn ptile_builds_are_thread_count_invariant(
        (sets, (lo, hi), (a, b)) in repo_and_query(),
    ) {
        let syns = synopses_1d(&sets);
        let params = PtileBuildParams::exact_centralized();
        let rect = Rect::interval(lo, hi);
        let theta = Interval::new(a, b);

        let range_serial = PtileRangeIndex::build(&syns, params.clone());
        let thr_serial = PtileThresholdIndex::build(&syns, params.clone());
        let multi_serial = PtileMultiIndex::build(&syns, 2, params.clone());
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(rect.clone(), a)),
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(rect.clone(), a / 2.0)),
                LogicalExpr::Pred(Predicate::percentile_at_least(Rect::interval(lo - 5.0, hi + 5.0), b)),
            ]),
        ]);

        for t in THREADS {
            let opts = BuildOptions::with_threads(t);
            let range = PtileRangeIndex::build_opts(&syns, params.clone(), &opts);
            prop_assert_eq!(range.query(&rect, theta), range_serial.query(&rect, theta));
            prop_assert_eq!(range.slack().to_bits(), range_serial.slack().to_bits());
            prop_assert_eq!(range.margin().to_bits(), range_serial.margin().to_bits());
            prop_assert_eq!(range.memory_bytes(), range_serial.memory_bytes());

            let thr = PtileThresholdIndex::build_opts(&syns, params.clone(), &opts);
            prop_assert_eq!(thr.query(&rect, a), thr_serial.query(&rect, a));
            prop_assert_eq!(thr.slack().to_bits(), thr_serial.slack().to_bits());
            prop_assert_eq!(thr.memory_bytes(), thr_serial.memory_bytes());

            let multi = PtileMultiIndex::build_opts(&syns, 2, params.clone(), &opts);
            prop_assert_eq!(
                multi.query(&[(rect.clone(), theta)]),
                multi_serial.query(&[(rect.clone(), theta)])
            );
            prop_assert_eq!(
                multi.query_expr(&expr).unwrap(),
                multi_serial.query_expr(&expr).unwrap()
            );
            prop_assert_eq!(multi.slack().to_bits(), multi_serial.slack().to_bits());
            prop_assert_eq!(multi.margin().to_bits(), multi_serial.margin().to_bits());
            prop_assert_eq!(multi.memory_bytes(), multi_serial.memory_bytes());
        }
    }

    /// Pref family and the mixed engine agree with their serial builds for
    /// every thread count.
    #[test]
    fn pref_and_engine_builds_are_thread_count_invariant(
        rows in prop::collection::vec(
            prop::collection::vec(
                ((-10i32..10), (-10i32..10)).prop_map(|(x, y)| vec![x as f64 / 10.0, y as f64 / 10.0]),
                1..8,
            ),
            1..6,
        ),
        dir in ((-10i32..=10), (-10i32..=10)),
        a_pct in -100i32..100,
    ) {
        prop_assume!(dir.0 != 0 || dir.1 != 0);
        let norm = ((dir.0 * dir.0 + dir.1 * dir.1) as f64).sqrt();
        let v = vec![dir.0 as f64 / norm, dir.1 as f64 / norm];
        let a = a_pct as f64 / 100.0;
        let repo = Repository::new(
            rows.iter()
                .enumerate()
                .map(|(i, r)| Dataset::from_rows(format!("d{i}"), r.clone()))
                .collect(),
        );
        let syns = repo.exact_synopses();
        let pref_params = PrefBuildParams::exact_centralized().with_eps(0.05);

        let pref_serial = PrefIndex::build(&syns, 1, pref_params.clone());
        let multi_serial = PrefMultiIndex::build(&syns, 1, 2, pref_params.clone());
        let engine_serial = MixedQueryEngine::build_opts(
            &repo,
            &[1],
            PtileBuildParams::exact_centralized(),
            pref_params.clone(),
            &BuildOptions::serial(),
        );
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::topk_at_least(v.clone(), 1, a)),
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::from_bounds(&[-0.5, -0.5], &[0.5, 0.5]),
                0.5,
            )),
        ]);
        let serial_hits = engine_serial.query(&expr).unwrap();

        for t in THREADS {
            let opts = BuildOptions::with_threads(t);
            let pref = PrefIndex::build_opts(&syns, 1, pref_params.clone(), &opts);
            prop_assert_eq!(pref.query(&v, a), pref_serial.query(&v, a));
            prop_assert_eq!(pref.slack().to_bits(), pref_serial.slack().to_bits());
            prop_assert_eq!(pref.margin().to_bits(), pref_serial.margin().to_bits());
            prop_assert_eq!(pref.memory_bytes(), pref_serial.memory_bytes());

            let multi = PrefMultiIndex::build_opts(&syns, 1, 2, pref_params.clone(), &opts);
            prop_assert_eq!(
                multi.query(&[(v.clone(), a), (vec![0.0, 1.0], a - 0.2)]),
                multi_serial.query(&[(v.clone(), a), (vec![0.0, 1.0], a - 0.2)])
            );
            prop_assert_eq!(multi.slack().to_bits(), multi_serial.slack().to_bits());

            let engine = MixedQueryEngine::build_opts(
                &repo,
                &[1],
                PtileBuildParams::exact_centralized(),
                pref_params.clone(),
                &opts,
            );
            prop_assert_eq!(engine.query(&expr).unwrap(), serial_hits.clone());
            prop_assert_eq!(
                engine.ptile_slack().to_bits(),
                engine_serial.ptile_slack().to_bits()
            );
            prop_assert_eq!(
                engine.pref_slack(1).unwrap().to_bits(),
                engine_serial.pref_slack(1).unwrap().to_bits()
            );
        }
    }
}

/// Large sampled datasets (support > the 512-point weight-sample cap), so
/// the per-dataset RNG streams are actually consumed: the sampled coresets —
/// and everything derived from them — must still be independent of the
/// thread count.
#[test]
fn sampled_builds_are_thread_count_invariant() {
    let repo = mixed_repo(24, 1500, 1, 0x9A12);
    let syns = repo.exact_synopses();
    let params = PtileBuildParams::default().with_rect_budget(200);

    let serial = PtileRangeIndex::build(&syns, params.clone());
    assert!(serial.eps() > 0.0, "sampling path must be engaged");
    let queries: Vec<(Rect, Interval)> = (0..8)
        .map(|q| {
            let lo = q as f64 * 9.0;
            (
                Rect::interval(lo, lo + 15.0),
                Interval::new(0.05 * q as f64, 0.1 + 0.1 * q as f64),
            )
        })
        .collect();
    for t in [2usize, 3, 8] {
        let opts = BuildOptions::with_threads(t);
        let par = PtileRangeIndex::build_opts(&syns, params.clone(), &opts);
        assert_eq!(par.eps().to_bits(), serial.eps().to_bits());
        assert_eq!(par.margin().to_bits(), serial.margin().to_bits());
        assert_eq!(par.memory_bytes(), serial.memory_bytes());
        for (rect, theta) in &queries {
            assert_eq!(
                par.query(rect, *theta),
                serial.query(rect, *theta),
                "threads = {t}"
            );
        }
    }
}
