//! Build determinism: constructing the same index twice from the same
//! `StdRng` seed yields bit-identical answers — across every index family
//! the facade prelude exercises, on sampled (RNG-consuming) workloads, and
//! under the default worker pool (whatever `DDS_THREADS` / core count the
//! environment provides). Together with `parallel_equivalence.rs` this pins
//! the whole build pipeline as a pure function of `(data, params.seed)`.

mod common;

use common::{ball_repo, mixed_repo};
use distribution_aware_search::prelude::*;

/// Sampled Ptile workload: supports exceed the 512-point weight-sample cap,
/// so every build consumes its per-dataset RNG streams.
fn ptile_inputs() -> (Vec<dds_synopsis::ExactSynopsis>, PtileBuildParams) {
    let repo = mixed_repo(16, 1400, 1, 0xDE7);
    let params = PtileBuildParams::default()
        .with_rect_budget(200)
        .with_seed(0x5EED);
    (repo.exact_synopses(), params)
}

fn ptile_queries() -> Vec<(Rect, Interval)> {
    (0..10)
        .map(|q| {
            let lo = -5.0 + q as f64 * 8.0;
            (
                Rect::interval(lo, lo + 12.0),
                Interval::new(0.04 * q as f64, 0.15 + 0.08 * q as f64),
            )
        })
        .collect()
}

#[test]
fn ptile_threshold_builds_identically_twice() {
    let (syns, params) = ptile_inputs();
    let a = PtileThresholdIndex::build(&syns, params.clone());
    let b = PtileThresholdIndex::build(&syns, params);
    assert_eq!(a.eps().to_bits(), b.eps().to_bits());
    assert_eq!(a.memory_bytes(), b.memory_bytes());
    for (rect, theta) in ptile_queries() {
        assert_eq!(a.query(&rect, theta.lo), b.query(&rect, theta.lo));
    }
}

#[test]
fn ptile_range_builds_identically_twice() {
    let (syns, params) = ptile_inputs();
    let a = PtileRangeIndex::build(&syns, params.clone());
    let b = PtileRangeIndex::build(&syns, params);
    assert_eq!(a.eps().to_bits(), b.eps().to_bits());
    assert_eq!(a.slack().to_bits(), b.slack().to_bits());
    assert_eq!(a.lifted_points(), b.lifted_points());
    assert_eq!(a.memory_bytes(), b.memory_bytes());
    for (rect, theta) in ptile_queries() {
        assert_eq!(a.query(&rect, theta), b.query(&rect, theta));
    }
}

#[test]
fn ptile_multi_builds_identically_twice() {
    let (syns, params) = ptile_inputs();
    let a = PtileMultiIndex::build(&syns, 2, params.clone());
    let b = PtileMultiIndex::build(&syns, 2, params);
    assert_eq!(a.eps().to_bits(), b.eps().to_bits());
    assert_eq!(a.margin().to_bits(), b.margin().to_bits());
    assert_eq!(a.lifted_points(), b.lifted_points());
    for (rect, theta) in ptile_queries() {
        let q = [(rect, theta)];
        assert_eq!(a.query(&q), b.query(&q));
    }
}

#[test]
fn exact_1d_builds_identically_twice() {
    let repo = mixed_repo(12, 600, 1, 0xE4D);
    let a = ExactCPtile1D::build(&repo, Interval::new(0.3, 0.7));
    let b = ExactCPtile1D::build(&repo, Interval::new(0.3, 0.7));
    for q in 0..10 {
        let lo = q as f64 * 7.0;
        assert_eq!(a.query(lo, lo + 11.0), b.query(lo, lo + 11.0));
    }
}

#[test]
fn pref_indexes_build_identically_twice() {
    let repo = ball_repo(20, 400, 2, 0xBA11);
    let syns = repo.exact_synopses();
    let params = PrefBuildParams::exact_centralized().with_eps(0.04);
    let a = PrefIndex::build(&syns, 3, params.clone());
    let b = PrefIndex::build(&syns, 3, params.clone());
    assert_eq!(a.memory_bytes(), b.memory_bytes());
    let am = PrefMultiIndex::build(&syns, 3, 2, params.clone());
    let bm = PrefMultiIndex::build(&syns, 3, 2, params);
    for q in 0..12 {
        let angle = q as f64 * 0.5;
        let v = vec![angle.cos(), angle.sin()];
        let t = -0.5 + 0.1 * q as f64;
        assert_eq!(a.query(&v, t), b.query(&v, t));
        assert_eq!(
            am.query(&[(v.clone(), t), (vec![0.0, 1.0], t - 0.1)]),
            bm.query(&[(v.clone(), t), (vec![0.0, 1.0], t - 0.1)])
        );
    }
}

#[test]
fn mixed_engine_builds_identically_twice_under_default_pool() {
    // `MixedQueryEngine::build` uses `BuildOptions::default()` — whatever
    // thread count the environment resolves, two builds from one seed must
    // answer identically, bit for bit.
    let repo = mixed_repo(14, 900, 2, 0x217);
    let ptile = PtileBuildParams::default()
        .with_rect_budget(200)
        .with_seed(42);
    let pref = PrefBuildParams::exact_centralized().with_eps(0.05);
    let a = MixedQueryEngine::build(&repo, &[1, 3], ptile.clone(), pref.clone());
    let b = MixedQueryEngine::build(&repo, &[1, 3], ptile, pref);
    assert_eq!(a.ptile_slack().to_bits(), b.ptile_slack().to_bits());
    assert_eq!(
        a.pref_slack(3).unwrap().to_bits(),
        b.pref_slack(3).unwrap().to_bits()
    );
    for q in 0..8 {
        let lo = q as f64 * 10.0;
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(
                    Rect::from_bounds(&[lo, lo], &[lo + 20.0, lo + 20.0]),
                    0.2,
                )),
                LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.1 * q as f64)),
            ]),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![0.0, 1.0], 3, 0.9)),
        ]);
        assert_eq!(a.query(&expr).unwrap(), b.query(&expr).unwrap());
    }
    assert_eq!(a.index_queries(), b.index_queries());
}
