//! Pins the umbrella crate's public API: everything here goes through
//! `distribution_aware_search` only — no direct `dds_*` imports — so a
//! missing `prelude` re-export or a renamed facade module breaks this test
//! at compile time.

use distribution_aware_search::prelude::*;

/// Example 1.1 shaped repository: rows are (quality score, position).
fn repo() -> Repository {
    Repository::new(vec![
        Dataset::from_rows(
            "census_a",
            vec![vec![0.9, 2.0], vec![0.8, 3.0], vec![0.7, 4.0]],
        ),
        Dataset::from_rows("census_b", vec![vec![0.3, 2.5], vec![0.2, 3.5]]),
        Dataset::from_rows("remote_c", vec![vec![0.9, 40.0], vec![0.8, 41.0]]),
    ])
}

#[test]
fn ptile_indexes_through_the_facade() {
    let repo = repo();
    let syns = repo.exact_synopses();

    let threshold = PtileThresholdIndex::build(&syns, PtileBuildParams::exact_centralized());
    let region = Rect::from_bounds(&[0.0, 0.0], &[1.0, 10.0]);
    let mut hits = threshold.query(&region, 0.5);
    hits.sort_unstable();
    assert_eq!(hits, vec![0, 1], "all of a and b sit at positions <= 10");

    let range = PtileRangeIndex::build(&syns, PtileBuildParams::exact_centralized());
    let mut hits = range.query(&region, Interval::new(0.5, 1.0));
    hits.sort_unstable();
    assert_eq!(hits, vec![0, 1]);
}

#[test]
fn exact_1d_and_multi_through_the_facade() {
    let repo = Repository::new(vec![
        Dataset::from_rows("x", vec![vec![1.0], vec![7.0], vec![9.0]]),
        Dataset::from_rows("y", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
    ]);
    let exact = ExactCPtile1D::build(&repo, Interval::new(0.5, 1.0));
    let mut hits = exact.query(3.0, 9.0);
    hits.sort_unstable();
    assert_eq!(hits, vec![0, 1], "both have >= 50% of mass in [3, 9]");

    let syns = repo.exact_synopses();
    let multi = PtileMultiIndex::build(&syns, 2, PtileBuildParams::exact_centralized());
    let q1 = (Rect::interval(0.0, 5.0), Interval::new(0.2, 1.0));
    let q2 = (Rect::interval(5.0, 11.0), Interval::new(0.2, 1.0));
    let mut hits = multi.query(&[q1, q2]);
    hits.sort_unstable();
    assert_eq!(hits, vec![0, 1]);
}

#[test]
fn pref_indexes_through_the_facade() {
    let repo = repo();
    let syns = repo.exact_synopses();

    let idx = PrefIndex::build(
        &syns,
        1,
        PrefBuildParams::exact_centralized().with_eps(0.02),
    );
    // Quality direction: datasets whose best score clears 0.5.
    let hits = idx.query(&[1.0, 0.0], 0.5);
    assert!(hits.contains(&0) && hits.contains(&2));
    assert!(idx.slack() >= 0.0);

    let multi = PrefMultiIndex::build(&syns, 1, 2, PrefBuildParams::exact_centralized());
    let hits = multi.query(&[(vec![1.0, 0.0], 0.5)]);
    assert!(hits.contains(&0) && hits.contains(&2));
}

#[test]
fn mixed_engine_and_synopsis_traits_through_the_facade() {
    let repo = repo();
    let engine = MixedQueryEngine::build(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized().with_eps(0.02),
    );
    let expr = LogicalExpr::And(vec![
        LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::from_bounds(&[0.0, 0.0], &[1.0, 10.0]),
            0.5,
        )),
        LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.5)),
    ]);
    let hits = engine.query(&expr).expect("rank 1 is indexed");
    assert!(hits.contains(&0), "census_a has the mass and the quality");

    // The synopsis traits are re-exported; calling a trait method through
    // the prelude pins them.
    let syns = repo.exact_synopses();
    let everywhere = Rect::from_bounds(&[-1e9, -1e9], &[1e9, 1e9]);
    assert!((PercentileSynopsis::mass(&syns[0], &everywhere) - 1.0).abs() < 1e-9);
    assert!(syns[0].score(&[1.0, 0.0], 1) >= 0.9 - 1e-9);

    // The per-crate facade modules stay addressable too.
    let p = distribution_aware_search::geom::Point::two(0.5, 0.5);
    assert_eq!(p.dim(), 2);
}

#[test]
fn sharded_engine_through_the_facade() {
    // The sharding layer is addressable entirely through the prelude:
    // partition a generated repository, ingest the shards, and get stable
    // global ids back (ascending, = unsharded dataset indexes here).
    let spec = RepoSpec::mixed(9, 40, 1, 0xFAC);
    let mut svc = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
    .with_cache_capacity(64);
    for shard in spec.shards(3) {
        svc.add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids);
    }
    assert_eq!((svc.n_shards(), svc.n_datasets()), (3, 9));
    let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 100.0),
        0.5,
    ));
    let ids: Vec<GlobalId> = svc.query(&expr).expect("rank 1 is indexed");
    assert_eq!(ids, (0..9).collect::<Vec<GlobalId>>());
    // The per-shard mask caches saw one miss each; a repeat hits.
    let (h0, m0) = svc.cache_stats();
    assert_eq!((h0, m0), (0, 3));
    assert_eq!(svc.query(&expr).unwrap().len(), 9);
    assert_eq!(svc.cache_stats(), (3, 3));
    // A standalone MaskCache is constructible through the prelude too.
    assert_eq!(MaskCache::new(16).capacity(), 16);
}

#[test]
fn served_engine_through_the_facade() {
    // The serving layer is addressable entirely through the prelude:
    // serve an empty engine on a loopback port, ingest through the
    // client, query, read stats, shut down gracefully.
    let svc = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    let server = DdsServer::serve(svc, "127.0.0.1:0", ServerConfig::default())
        .expect("bind a loopback port");
    let mut client = DdsClient::connect(server.local_addr()).expect("connect");
    let spec = RepoSpec::mixed(6, 30, 1, 0xFACE);
    for shard in spec.shards(2) {
        client
            .add_shard(&Repository::from_point_sets(shard.sets), &shard.global_ids)
            .expect("ingest");
    }
    let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 100.0),
        0.5,
    ));
    assert_eq!(
        client.query(&expr).expect("transport"),
        Ok((0..6).collect::<Vec<GlobalId>>())
    );
    let stats: ServerStats = client.stats().expect("stats");
    assert_eq!((stats.n_shards, stats.n_datasets), (2, 6));
    // The typed error surface is addressable too.
    match client.add_shard(
        &Repository::new(vec![Dataset::from_rows("dup", vec![vec![1.0]])]),
        &[0],
    ) {
        Err(ClientError::Server(e)) => assert!(e.message.contains("already served")),
        other => panic!("expected a typed ingest rejection, got {other:?}"),
    }
    client.shutdown_server().expect("shutdown");
    server.shutdown();
    // IngestError and ShardedStats are plain prelude values as well.
    let _: IngestError = IngestError::DuplicateId(3);
    let snap: ShardedStats = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
    .stats_snapshot();
    assert_eq!(snap.n_shards, 0);
}

#[test]
fn typed_errors_through_the_facade() {
    // The unified error surface: `EngineError` and `IngestError` both
    // arrive via the prelude (backed by `dds_core::error`), and the
    // panic-free `try_query*` paths speak it on both engines.
    let repo = repo(); // 2-d datasets
    let engine = MixedQueryEngine::build(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    let wrong_dim = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 1.0), // 1-d against the 2-d schema
        0.5,
    ));
    match engine.try_query(&wrong_dim) {
        Err(EngineError::DimensionMismatch { expected, got }) => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("expected a typed dimension mismatch, got {other:?}"),
    }
    let mut svc = ShardedEngine::new(
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    );
    svc.add_shard(&repo, &[0, 1, 2]);
    assert!(matches!(
        svc.try_query(&wrong_dim),
        Err(EngineError::DimensionMismatch {
            expected: 2,
            got: 1
        })
    ));
    // The serving-layer knobs introduced alongside it are prelude values.
    let _rl = RateLimit {
        burst: 8,
        per_sec: 2,
    };
    let _cc = ClientConfig {
        timeout: Some(std::time::Duration::from_secs(1)),
        ..ClientConfig::default()
    };
}

#[test]
fn quickstart_docs_scenario_through_the_facade() {
    // Mirrors the `src/lib.rs` doctest so the README/quickstart snippet is
    // also covered by `cargo test` proper.
    let datasets = vec![
        Dataset::from_rows("a", vec![vec![1.0], vec![7.0], vec![9.0]]),
        Dataset::from_rows("b", vec![vec![2.0], vec![4.0], vec![6.0], vec![10.0]]),
        Dataset::from_rows("c", vec![vec![100.0], vec![200.0]]),
    ];
    let repo = Repository::new(datasets);
    let index = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let mut hits = index.query(&Rect::from_bounds(&[3.0], &[8.0]), 0.2);
    hits.sort_unstable();
    assert_eq!(hits, vec![0, 1]);
}
