//! Shared fixtures for the cross-crate integration tests.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use dds_core::framework::Repository;
use dds_geom::Point;
use dds_workload::RepoSpec;

/// A deterministic mixed-flavour repository (N datasets, ~points each).
pub fn mixed_repo(n: usize, points: usize, dim: usize, seed: u64) -> Repository {
    Repository::from_point_sets(RepoSpec::mixed(n, points, dim, seed).build())
}

/// A deterministic unit-ball repository for Pref tests.
pub fn ball_repo(n: usize, points: usize, dim: usize, seed: u64) -> Repository {
    Repository::from_point_sets(RepoSpec::unit_ball(n, points, dim, seed).build())
}

/// Raw point sets of a repository (for the guarantee checkers).
pub fn point_sets(repo: &Repository) -> Vec<Vec<Point>> {
    repo.point_sets().map(|p| p.to_vec()).collect()
}

/// Sorted copy.
pub fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}
