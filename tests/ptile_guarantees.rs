//! Integration tests for the approximate Ptile indexes (Theorems 4.4 and
//! 4.11): recall and error-band guarantees on mixed synthetic repositories,
//! centralized setting, against the exact linear-scan baseline.

mod common;

use common::{mixed_repo, point_sets, sorted};
use dds_core::baseline::LinearScanPtile;
use dds_core::framework::Interval;
use dds_core::guarantee::{check_ptile, GuaranteeCheck};
use dds_core::ptile::{PtileBuildParams, PtileRangeIndex, PtileThresholdIndex};
use dds_workload::queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_holds(check: &GuaranteeCheck, ctx: &str) {
    assert!(
        check.missed.is_empty(),
        "{ctx}: recall violated, missed {:?}",
        check.missed
    );
    assert!(
        check.out_of_band.is_empty(),
        "{ctx}: band violated for {:?}",
        check.out_of_band
    );
}

#[test]
fn threshold_index_guarantees_d1() {
    let repo = mixed_repo(60, 500, 1, 11);
    let sets = point_sets(&repo);
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(12);
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..40 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.05..0.9);
        let hits = idx.query(&r, a);
        let check = check_ptile(&sets, &r, Interval::new(a, 1.0), &hits, slack);
        assert_holds(&check, &format!("threshold d=1 query {q}"));
    }
}

#[test]
fn threshold_index_guarantees_d2() {
    let repo = mixed_repo(40, 400, 2, 21);
    let sets = point_sets(&repo);
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(22);
    let bbox = dds_geom::Rect::from_bounds(&[0.0, 0.0], &[100.0, 100.0]);
    for q in 0..25 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.05..0.9);
        let hits = idx.query(&r, a);
        let check = check_ptile(&sets, &r, Interval::new(a, 1.0), &hits, slack);
        assert_holds(&check, &format!("threshold d=2 query {q}"));
    }
}

#[test]
fn range_index_guarantees_d1() {
    let repo = mixed_repo(50, 400, 1, 31);
    let sets = point_sets(&repo);
    let idx = PtileRangeIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(32);
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..40 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.05);
        let hits = idx.query(&r, Interval::new(a, b));
        let check = check_ptile(&sets, &r, Interval::new(a, b), &hits, slack);
        assert_holds(&check, &format!("range d=1 query {q} theta=[{a},{b}]"));
    }
}

#[test]
fn range_index_guarantees_d2() {
    let repo = mixed_repo(30, 300, 2, 41);
    let sets = point_sets(&repo);
    let idx = PtileRangeIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(42);
    let bbox = dds_geom::Rect::from_bounds(&[0.0, 0.0], &[100.0, 100.0]);
    for q in 0..25 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.05);
        let hits = idx.query(&r, Interval::new(a, b));
        let check = check_ptile(&sets, &r, Interval::new(a, b), &hits, slack);
        assert_holds(&check, &format!("range d=2 query {q}"));
    }
}

#[test]
fn small_supports_make_answers_exact() {
    // Datasets small enough for the exact-support shortcut: the index must
    // agree with the exact baseline bit-for-bit.
    let repo = mixed_repo(40, 60, 1, 51);
    let scan = LinearScanPtile::build(&repo);
    let idx = PtileRangeIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    assert_eq!(idx.eps(), 0.0, "60-point datasets fit the budget exactly");
    let mut rng = StdRng::seed_from_u64(52);
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for _ in 0..40 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.05);
        let theta = Interval::new(a, b);
        assert_eq!(
            sorted(idx.query(&r, theta)),
            sorted(scan.query(&r, theta)),
            "R={r:?} theta=[{a},{b}]"
        );
    }
}

#[test]
fn output_is_duplicate_free_and_queries_are_repeatable() {
    let repo = mixed_repo(30, 200, 1, 61);
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let r = dds_geom::Rect::interval(10.0, 60.0);
    let first = sorted(idx.query(&r, 0.3));
    let mut dedup = first.clone();
    dedup.dedup();
    assert_eq!(first, dedup);
    for _ in 0..3 {
        assert_eq!(sorted(idx.query(&r, 0.3)), first);
    }
}

#[test]
fn selectivity_controls_output_size() {
    let repo = mixed_repo(60, 300, 1, 71);
    let sets = point_sets(&repo);
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let mut rng = StdRng::seed_from_u64(72);
    // A rectangle sized to ~50% of a dataset's mass should report a healthy
    // fraction of the repository at a low threshold and much less at 0.9.
    let anchor = &sets[0];
    let r = queries::rect_with_selectivity(&mut rng, anchor, 0.5);
    let low = idx.query(&r, 0.05).len();
    let high = idx.query(&r, 0.9).len();
    assert!(low >= high, "low threshold reports at least as many");
}
