//! Shard-equivalence layer: a [`ShardedEngine`] must be indistinguishable
//! from a single unsharded [`MixedQueryEngine`] over the same datasets —
//! same answer sets (as stable global ids, canonically ascending), same
//! per-expression errors — for **every shard count × thread count**. This
//! is the contract that makes sharding a pure scaling decision: re-sharding
//! a catalog can never change what a query returns.
//!
//! Also pins the service-cache behaviours the sharding PR introduced: the
//! cross-call mask cache stays within its capacity bound, and a shard
//! rebuild invalidates exactly that shard's entries (requeries recompute
//! against the new data, other shards keep hitting their caches).
//!
//! The lifecycle layer extends the contract to **transitions**: a split or
//! merge must be indistinguishable from building the resulting layout from
//! scratch (exact and φ-anchored sampled builds alike), and a long random
//! interleaving of split/merge/rebuild/query churn must stay byte-identical
//! to the unsharded reference throughout, with cache invalidation scoped to
//! exactly the shards each transition touched.

mod common;

use dds_core::framework::Repository;
use distribution_aware_search::prelude::*;
use proptest::prelude::*;

/// Shard counts × thread counts the equivalence contract is pinned against.
const SHARDS: [usize; 4] = [1, 2, 3, 8];
const THREADS: [usize; 3] = [1, 2, 8];

fn dataset_1d(i: usize, xs: &[f64]) -> Dataset {
    Dataset::from_rows(format!("d{i}"), xs.iter().map(|&x| vec![x]).collect())
}

fn build_params() -> (PtileBuildParams, PrefBuildParams) {
    (
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
    )
}

/// The unsharded reference engine over all datasets.
fn unsharded(sets: &[Vec<f64>]) -> MixedQueryEngine {
    let (ptile, pref) = build_params();
    MixedQueryEngine::build_opts(
        &Repository::new(
            sets.iter()
                .enumerate()
                .map(|(i, xs)| dataset_1d(i, xs))
                .collect(),
        ),
        &[1],
        ptile,
        pref,
        &BuildOptions::serial(),
    )
}

/// A sharded engine over the same datasets: round-robin partition into (at
/// most) `k` shards, global id = unsharded dataset index.
fn sharded(sets: &[Vec<f64>], k: usize) -> ShardedEngine {
    sharded_with_routing(sets, k, true)
}

/// [`sharded`] with the bounding-box routing fast path switched
/// explicitly (routing defaults to on; the off position only exists for
/// the routed ≡ unrouted equivalence pins below).
fn sharded_with_routing(sets: &[Vec<f64>], k: usize, route: bool) -> ShardedEngine {
    let (ptile, pref) = build_params();
    let mut svc = ShardedEngine::new(&[1], ptile, pref).with_routing(route);
    let k = k.min(sets.len()).max(1);
    for s in 0..k {
        let members: Vec<usize> = (s..sets.len()).step_by(k).collect();
        svc.add_shard_opts(
            &Repository::new(members.iter().map(|&i| dataset_1d(i, &sets[i])).collect()),
            &members.iter().map(|&i| i as GlobalId).collect::<Vec<_>>(),
            &BuildOptions::serial(),
        );
    }
    svc
}

/// What the sharded engine must return for one expression: the unsharded
/// answer as ascending global ids, errors passed through.
fn reference(
    engine: &MixedQueryEngine,
    expr: &LogicalExpr,
) -> Result<Vec<GlobalId>, dds_core::engine::EngineError> {
    engine.query(expr).map(|hits| {
        let mut ids: Vec<GlobalId> = hits.into_iter().map(|j| j as GlobalId).collect();
        ids.sort_unstable();
        ids
    })
}

/// Generated case: 1-d datasets plus query-shape scalars (the same grid
/// workload the batch-equivalence layer uses).
type ShardCase = (Vec<Vec<f64>>, Vec<(f64, f64, f64, f64)>);

fn repo_and_batch() -> impl Strategy<Value = ShardCase> {
    (
        prop::collection::vec(
            prop::collection::vec((-20i32..20).prop_map(|x| x as f64), 1..10),
            1..7,
        ),
        prop::collection::vec(
            ((-25i32..25), (0i32..15), (0u32..=100), (0u32..=60)).prop_map(|(lo, w, a, bw)| {
                (lo as f64, w as f64, a as f64 / 100.0, bw as f64 / 100.0)
            }),
            1..10,
        ),
    )
}

/// A mixed expression (percentile + top-k literals) from one query shape.
/// Every third shape asks for an unindexed preference rank, so error
/// preservation is exercised inside the same batches.
fn mixed_expr(i: usize, lo: f64, w: f64, a: f64, bw: f64) -> LogicalExpr {
    let rect = Rect::interval(lo, lo + w);
    let rank = if i % 3 == 2 { 4 } else { 1 };
    LogicalExpr::Or(vec![
        LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile(
                rect.clone(),
                Interval::new(a, (a + bw).min(1.0)),
            )),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], rank, lo + w * a)),
        ]),
        LogicalExpr::Pred(Predicate::percentile_at_least(rect, a)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ShardedEngine::{query, query_batch}` ≡ a single unsharded engine,
    /// for every shard count × thread count — including the expressions
    /// that error on an unindexed rank.
    #[test]
    fn sharded_matches_unsharded((sets, shapes) in repo_and_batch()) {
        let reference_engine = unsharded(&sets);
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(lo, w, a, bw))| mixed_expr(i, lo, w, a, bw))
            .collect();
        let expected: Vec<_> = exprs.iter().map(|e| reference(&reference_engine, e)).collect();
        for k in SHARDS {
            let svc = sharded(&sets, k);
            prop_assert_eq!(svc.n_datasets(), sets.len());
            // Single-query scatter path (caller scratch reused across shards).
            let mut scratch = QueryScratch::new();
            let singles: Vec<_> = exprs.iter().map(|e| svc.query_with(e, &mut scratch)).collect();
            prop_assert_eq!(&singles, &expected, "single queries, shards = {}", k);
            for t in THREADS {
                let batch = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(t));
                prop_assert_eq!(&batch, &expected, "shards = {}, threads = {}", k, t);
            }
            // The batches above warmed every shard cache; a repeat batch is
            // answered from cache and must still be bit-identical.
            let warm = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(2));
            prop_assert_eq!(&warm, &expected, "warm-cache repeat, shards = {}", k);
        }
    }

    /// The bounding-box routing fast path (PR 5) must be invisible in
    /// answers: the same shard layout with routing off is bit-identical —
    /// single and batch paths, including the error-carrying expressions
    /// (routing declines those outright). Note `sharded_matches_unsharded`
    /// above already pins the routed engine against the *unsharded*
    /// reference; this pins routed ≡ unrouted on equal layouts directly.
    #[test]
    fn routed_matches_unrouted((sets, shapes) in repo_and_batch()) {
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(lo, w, a, bw))| mixed_expr(i, lo, w, a, bw))
            .collect();
        for k in [1usize, 2, 3] {
            let routed = sharded(&sets, k);
            let unrouted = sharded_with_routing(&sets, k, false);
            let mut scratch = QueryScratch::new();
            for e in &exprs {
                prop_assert_eq!(
                    routed.query_with(e, &mut scratch),
                    unrouted.query_with(e, &mut scratch),
                    "single query, shards = {}", k
                );
            }
            prop_assert_eq!(
                routed.query_batch_opts(&exprs, &BuildOptions::with_threads(2)),
                unrouted.query_batch_opts(&exprs, &BuildOptions::with_threads(2)),
                "batch, shards = {}", k
            );
            prop_assert_eq!(unrouted.shards_routed_past(), 0);
        }
    }

    /// Rebuilding one shard re-lands new data under the same global ids:
    /// requeries must agree with an unsharded engine over the *updated*
    /// dataset collection, at every thread count — the
    /// rebuild-then-requery invalidation case.
    #[test]
    fn rebuild_then_requery_matches_updated_unsharded(
        (mut sets, shapes) in repo_and_batch(),
        shift in (1i32..15).prop_map(|s| s as f64),
    ) {
        prop_assume!(sets.len() >= 2);
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(lo, w, a, bw))| mixed_expr(i, lo, w, a, bw))
            .collect();
        let k = 2usize;
        let mut svc = sharded(&sets, k);
        // Warm the caches on the original data — including an
        // invalidation probe that routing can never skip (θ lower bound 0
        // is within every margin, so every shard must be consulted).
        let probe = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(-1e6, 1e6),
            0.0,
        ));
        let _ = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(2));
        let _ = svc.query(&probe);
        let (_, misses_before) = svc.cache_stats();
        // Shard 0 (datasets 0, 2, 4, …) re-lands with every value shifted.
        let members: Vec<usize> = (0..sets.len()).step_by(k).collect();
        for &i in &members {
            for x in &mut sets[i] {
                *x += shift;
            }
        }
        svc.rebuild_shard_opts(
            0,
            &Repository::new(members.iter().map(|&i| dataset_1d(i, &sets[i])).collect()),
            &members.iter().map(|&i| i as GlobalId).collect::<Vec<_>>(),
            &BuildOptions::serial(),
        );
        let updated_reference = unsharded(&sets);
        let expected: Vec<_> = exprs.iter().map(|e| reference(&updated_reference, e)).collect();
        for t in THREADS {
            let requeried = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(t));
            prop_assert_eq!(&requeried, &expected, "threads = {}", t);
        }
        // The probe could not have been served from its warm pre-rebuild
        // mask: the rebuilt shard's cache was invalidated, so it
        // recomputes (misses advance) while shard 1 keeps hitting.
        let _ = svc.query(&probe);
        let (_, misses_after) = svc.cache_stats();
        prop_assert!(misses_after > misses_before, "rebuild must invalidate");
    }
}

/// Sampled builds (ε_i > 0: each dataset's support exceeds the sample
/// budget, so the RNG really draws) are also shard-count invariant —
/// because shard engines seed per-dataset sampling by **global id** and
/// the φ-split is anchored to the catalog size. This is exactly the
/// regime where positional seeding or per-shard φ accounting would break
/// equivalence.
#[test]
fn sampled_builds_match_unsharded_across_shard_counts() {
    let n = 6usize;
    // 60 deterministic points per dataset, spread so thresholds land near
    // mass boundaries (any sample mismatch flips some answer below).
    let sets: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..60)
                .map(|j| ((i * 13 + j * 7) % 97) as f64 - 20.0)
                .collect()
        })
        .collect();
    // ε = 0.4 makes the admissible sample (~23 points) smaller than the
    // 60-point supports, so the sampling path is engaged for real.
    let ptile = PtileBuildParams::default()
        .with_eps(0.4)
        .with_phi_datasets(n);
    let pref = PrefBuildParams::exact_centralized();
    let reference_engine = MixedQueryEngine::build_opts(
        &Repository::new(
            sets.iter()
                .enumerate()
                .map(|(i, xs)| dataset_1d(i, xs))
                .collect(),
        ),
        &[1],
        ptile.clone(),
        pref.clone(),
        &BuildOptions::serial(),
    );
    assert!(
        reference_engine.ptile_slack() > 0.0,
        "sampling must actually be engaged for this test to mean anything"
    );
    let exprs: Vec<LogicalExpr> = (0..40)
        .map(|q| {
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(-20.0 + q as f64 * 2.0, -10.0 + q as f64 * 2.0),
                0.05 * (q % 19) as f64,
            ))
        })
        .collect();
    let expected: Vec<_> = exprs
        .iter()
        .map(|e| reference(&reference_engine, e))
        .collect();
    for k in [1usize, 2, 3] {
        let mut svc = ShardedEngine::new(&[1], ptile.clone(), pref.clone());
        for s in 0..k.min(n) {
            let members: Vec<usize> = (s..n).step_by(k.min(n)).collect();
            svc.add_shard_opts(
                &Repository::new(members.iter().map(|&i| dataset_1d(i, &sets[i])).collect()),
                &members.iter().map(|&i| i as GlobalId).collect::<Vec<_>>(),
                &BuildOptions::serial(),
            );
        }
        assert!(svc.ptile_slack() > 0.0, "shards sample too (k = {k})");
        for t in THREADS {
            assert_eq!(
                svc.query_batch_opts(&exprs, &BuildOptions::with_threads(t)),
                expected,
                "sampled equivalence, shards = {k}, threads = {t}"
            );
        }
    }
}

/// The routing fast path really engages (the proptests above only prove
/// it is answer-invisible): value-separated shards let a narrow predicate
/// skip every shard but its own, and the skipped shards' caches are never
/// touched.
#[test]
fn routing_skips_value_separated_shards_and_spares_their_caches() {
    // Shard s holds datasets living in [100s, 100s + 20]: disjoint boxes.
    let (ptile, pref) = build_params();
    let mut svc = ShardedEngine::new(&[1], ptile, pref);
    for s in 0..3usize {
        let base = 100.0 * s as f64;
        svc.add_shard_opts(
            &Repository::new(vec![
                dataset_1d(2 * s, &[base, base + 10.0]),
                dataset_1d(2 * s + 1, &[base + 15.0, base + 20.0]),
            ]),
            &[2 * s as GlobalId, 2 * s as GlobalId + 1],
            &BuildOptions::serial(),
        );
    }
    // One narrow query per shard band: each consults exactly one shard.
    for s in 0..3usize {
        let base = 100.0 * s as f64;
        let expr = LogicalExpr::Pred(Predicate::percentile_at_least(
            Rect::interval(base - 5.0, base + 25.0),
            0.9,
        ));
        assert_eq!(
            svc.query(&expr),
            Ok(vec![2 * s as GlobalId, 2 * s as GlobalId + 1]),
            "band {s}"
        );
    }
    assert_eq!(
        svc.shards_routed_past(),
        6,
        "each of the 3 queries skipped the 2 foreign shards"
    );
    let (_, misses) = svc.cache_stats();
    assert_eq!(misses, 3, "each shard computed only its own band's mask");
    // A query beyond every box consults nobody.
    let far = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(900.0, 950.0),
        0.5,
    ));
    assert_eq!(svc.query(&far), Ok(vec![]));
    assert_eq!(svc.shards_routed_past(), 9);
}

/// A sharded engine built from scratch over an explicit shard layout
/// (`layout[s]` = shard `s`'s global ids) — the "rebuilt" side of the
/// transition-equivalence pins.
fn engine_with_layout(
    sets: &[Vec<f64>],
    layout: &[Vec<GlobalId>],
    ptile: &PtileBuildParams,
    pref: &PrefBuildParams,
) -> ShardedEngine {
    let mut svc = ShardedEngine::new(&[1], ptile.clone(), pref.clone());
    for ids in layout {
        svc.add_shard_opts(
            &Repository::new(
                ids.iter()
                    .map(|&i| dataset_1d(i as usize, &sets[i as usize]))
                    .collect(),
            ),
            ids,
            &BuildOptions::serial(),
        );
    }
    svc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Split-then-query and merge-then-query ≡ the same layout rebuilt
    /// from scratch (and both ≡ the unsharded reference), for exact
    /// builds across shard counts {2, 3, 8} × thread counts {1, 4} —
    /// including the MissingRank-carrying expressions, which transitions
    /// must preserve exactly like hits.
    #[test]
    fn split_and_merge_match_rebuilt_from_scratch((sets, shapes) in repo_and_batch()) {
        prop_assume!(sets.len() >= 2);
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(lo, w, a, bw))| mixed_expr(i, lo, w, a, bw))
            .collect();
        let reference_engine = unsharded(&sets);
        let expected: Vec<_> = exprs.iter().map(|e| reference(&reference_engine, e)).collect();
        let (ptile, pref) = build_params();
        for k in [2usize, 3, 8] {
            let mut svc = sharded(&sets, k);
            // Split the first divisible shard, moving the upper half of
            // its ascending ids to a new shard.
            if let Some(s) = (0..svc.n_shards()).find(|&s| svc.global_ids(s).len() >= 2) {
                let mut ids = svc.global_ids(s).to_vec();
                ids.sort_unstable();
                let move_ids = ids.split_off(ids.len() / 2);
                let born = svc.split_shard_opts(s, &move_ids, &BuildOptions::serial());
                prop_assert_eq!(born, svc.n_shards() - 1, "the new shard lands last");
            }
            // Merge the outermost pair, naming the higher index first —
            // the merged result must not depend on argument order.
            if svc.n_shards() >= 2 {
                let survivor = svc.merge_shards_opts(svc.n_shards() - 1, 0, &BuildOptions::serial());
                prop_assert_eq!(survivor, 0, "the merged shard lands at min(a, b)");
            }
            prop_assert_eq!(svc.n_datasets(), sets.len(), "transitions conserve the catalog");
            // The exact post-transition layout, rebuilt from scratch.
            let layout: Vec<Vec<GlobalId>> =
                (0..svc.n_shards()).map(|s| svc.global_ids(s).to_vec()).collect();
            let fresh = engine_with_layout(&sets, &layout, &ptile, &pref);
            for t in [1usize, 4] {
                let opts = BuildOptions::with_threads(t);
                let churned = svc.query_batch_opts(&exprs, &opts);
                prop_assert_eq!(
                    &churned, &expected,
                    "transitioned vs unsharded, shards = {}, threads = {}", k, t
                );
                prop_assert_eq!(
                    &churned, &fresh.query_batch_opts(&exprs, &opts),
                    "transitioned vs rebuilt-from-scratch, shards = {}, threads = {}", k, t
                );
            }
        }
    }

    /// The same transition-equivalence pin for **φ-anchored sampled
    /// builds** (ε > 0, the regime where per-shard φ accounting or
    /// positional sampling seeds would break it): split-then-query and
    /// merge-then-query stay bit-identical to the unsharded sampled
    /// reference and to the post-transition layout rebuilt from scratch.
    #[test]
    fn sampled_split_and_merge_match_rebuilt_from_scratch(salt in 0usize..1000) {
        let n = 6usize;
        let sets: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..60)
                    .map(|j| ((i * 13 + j * 7 + salt) % 97) as f64 - 20.0)
                    .collect()
            })
            .collect();
        // ε = 0.4 keeps the admissible sample below the 60-point
        // supports, so the seeded sampling path is engaged for real; the
        // φ-split is anchored to the catalog size.
        let ptile = PtileBuildParams::default().with_eps(0.4).with_phi_datasets(n);
        let pref = PrefBuildParams::exact_centralized();
        let reference_engine = MixedQueryEngine::build_opts(
            &Repository::new(
                sets.iter()
                    .enumerate()
                    .map(|(i, xs)| dataset_1d(i, xs))
                    .collect(),
            ),
            &[1],
            ptile.clone(),
            pref.clone(),
            &BuildOptions::serial(),
        );
        prop_assert!(reference_engine.ptile_slack() > 0.0, "sampling must engage");
        // Percentile sweep plus MissingRank probes (every third asks for
        // an unindexed rank) — errors must survive transitions too.
        let exprs: Vec<LogicalExpr> = (0..18)
            .map(|q| {
                if q % 3 == 2 {
                    LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 4, 0.0))
                } else {
                    LogicalExpr::Pred(Predicate::percentile_at_least(
                        Rect::interval(-20.0 + q as f64 * 4.0, -8.0 + q as f64 * 4.0),
                        0.05 * (q % 19) as f64,
                    ))
                }
            })
            .collect();
        let expected: Vec<_> = exprs.iter().map(|e| reference(&reference_engine, e)).collect();
        for k in [2usize, 3, 8] {
            let k_eff = k.min(n);
            let round_robin: Vec<Vec<GlobalId>> = (0..k_eff)
                .map(|s| (s..n).step_by(k_eff).map(|i| i as GlobalId).collect())
                .collect();
            let mut svc = engine_with_layout(&sets, &round_robin, &ptile, &pref);
            prop_assert!(svc.ptile_slack() > 0.0, "shards sample too (k = {})", k);
            if let Some(s) = (0..svc.n_shards()).find(|&s| svc.global_ids(s).len() >= 2) {
                let mut ids = svc.global_ids(s).to_vec();
                ids.sort_unstable();
                let move_ids = ids.split_off(ids.len() / 2);
                svc.split_shard_opts(s, &move_ids, &BuildOptions::serial());
            }
            if svc.n_shards() >= 2 {
                svc.merge_shards_opts(svc.n_shards() - 1, 0, &BuildOptions::serial());
            }
            let layout: Vec<Vec<GlobalId>> =
                (0..svc.n_shards()).map(|s| svc.global_ids(s).to_vec()).collect();
            let fresh = engine_with_layout(&sets, &layout, &ptile, &pref);
            for t in [1usize, 4] {
                let opts = BuildOptions::with_threads(t);
                let churned = svc.query_batch_opts(&exprs, &opts);
                prop_assert_eq!(
                    &churned, &expected,
                    "sampled transition vs unsharded, shards = {}, threads = {}", k, t
                );
                prop_assert_eq!(
                    &churned, &fresh.query_batch_opts(&exprs, &opts),
                    "sampled transition vs rebuilt, shards = {}, threads = {}", k, t
                );
            }
        }
    }
}

/// The churn soak: a long random interleaving of split / merge / rebuild /
/// query-batch steps stays byte-identical to an unsharded reference engine
/// throughout, every transition's cache invalidation is scoped to exactly
/// the shards it touched, and a repeated batch is answered entirely from
/// warm caches (`index_queries` advances by 0).
#[test]
fn churn_soak_stays_byte_identical_to_unsharded_reference() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    // 8 datasets keyed by global id; rebuild steps mutate them in place.
    let mut sets: Vec<Vec<f64>> = (0..8usize)
        .map(|i| {
            (0..6)
                .map(|j| ((i * 11 + j * 5) % 37) as f64 - 10.0)
                .collect()
        })
        .collect();
    let mut svc = sharded(&sets, 3);
    let mut reference_engine = unsharded(&sets);
    // Mixed workload, MissingRank probes included (every third shape).
    let exprs: Vec<LogicalExpr> = (0..9)
        .map(|i| mixed_expr(i, -12.0 + i as f64 * 3.0, 8.0, 0.1 * (i % 7) as f64, 0.3))
        .collect();
    let generations = |svc: &ShardedEngine| -> Vec<u64> {
        (0..svc.n_shards())
            .map(|s| svc.shard_engine(s).mask_cache().generation())
            .collect()
    };
    let mut performed = 0usize;
    for step in 0..70 {
        let action = rng.gen_range(0u8..4);
        let before = generations(&svc);
        if action == 0 && svc.n_shards() < 6 {
            // Split a random divisible shard, moving a uniform random
            // strict subset of its ids.
            let divisible: Vec<usize> = (0..svc.n_shards())
                .filter(|&s| svc.global_ids(s).len() >= 2)
                .collect();
            if let Some(&s) = divisible
                .get(rng.gen_range(0..divisible.len().max(1)))
                .filter(|_| !divisible.is_empty())
            {
                let mut ids = svc.global_ids(s).to_vec();
                let m = rng.gen_range(1..ids.len());
                for i in 0..m {
                    let j = rng.gen_range(i..ids.len());
                    ids.swap(i, j);
                }
                svc.split_shard_opts(s, &ids[..m], &BuildOptions::serial());
                let after = generations(&svc);
                // Only the split shard's (carried) cache was invalidated;
                // the new shard starts with an empty cache.
                for i in 0..before.len() {
                    if i == s {
                        assert!(after[i] > before[i], "step {step}: split bumps shard {s}");
                    } else {
                        assert_eq!(after[i], before[i], "step {step}: shard {i} untouched");
                    }
                }
                assert_eq!(
                    svc.shard_engine(svc.n_shards() - 1).mask_cache().len(),
                    0,
                    "step {step}: the new shard's cache starts empty"
                );
                performed += 1;
            }
        } else if action == 1 && svc.n_shards() >= 2 {
            // Merge a random distinct pair.
            let a = rng.gen_range(0..svc.n_shards());
            let b = (a + 1 + rng.gen_range(0..svc.n_shards() - 1)) % svc.n_shards();
            let (lo, hi) = (a.min(b), a.max(b));
            let survivor = svc.merge_shards_opts(a, b, &BuildOptions::serial());
            assert_eq!(survivor, lo, "step {step}: survivor is min(a, b)");
            let after = generations(&svc);
            // Survivor bumped; every other shard's cache untouched
            // (indices past the absorbed shard shift down by one).
            for (i, gen) in after.iter().enumerate() {
                let old = if i < hi { i } else { i + 1 };
                if i == lo {
                    assert!(*gen > before[old], "step {step}: merge bumps {lo}");
                } else {
                    assert_eq!(*gen, before[old], "step {step}: shard {i} untouched");
                }
            }
            performed += 1;
        } else if action == 2 {
            // Re-land a random shard under its own ids with every value
            // shifted — a real data change, so the reference moves too.
            let s = rng.gen_range(0..svc.n_shards());
            let ids = svc.global_ids(s).to_vec();
            for &id in &ids {
                for x in &mut sets[id as usize] {
                    *x += 1.0;
                }
            }
            svc.rebuild_shard_opts(
                s,
                &Repository::new(
                    ids.iter()
                        .map(|&i| dataset_1d(i as usize, &sets[i as usize]))
                        .collect(),
                ),
                &ids,
                &BuildOptions::serial(),
            );
            reference_engine = unsharded(&sets);
            let after = generations(&svc);
            for i in 0..before.len() {
                if i == s {
                    assert!(after[i] > before[i], "step {step}: rebuild bumps shard {s}");
                } else {
                    assert_eq!(after[i], before[i], "step {step}: shard {i} untouched");
                }
            }
            performed += 1;
        } else {
            // Query step: the churned engine answers byte-identically to
            // the unsharded reference, and a repeat batch is pure cache
            // (index_queries advances by 0, answers still identical).
            let threads = if rng.gen_range(0u8..2) == 0 { 1 } else { 4 };
            let opts = BuildOptions::with_threads(threads);
            let expected: Vec<_> = exprs
                .iter()
                .map(|e| reference(&reference_engine, e))
                .collect();
            let got = svc.query_batch_opts(&exprs, &opts);
            assert_eq!(got, expected, "step {step}: churned ≡ unsharded");
            let warm_index_queries = svc.index_queries();
            let repeat = svc.query_batch_opts(&exprs, &opts);
            assert_eq!(repeat, expected, "step {step}: warm repeat identical");
            assert_eq!(
                svc.index_queries(),
                warm_index_queries,
                "step {step}: a repeated batch is answered entirely from cache"
            );
            performed += 1;
        }
        assert_eq!(
            svc.n_datasets(),
            sets.len(),
            "step {step}: catalog conserved"
        );
    }
    assert!(
        performed >= 50,
        "the soak must actually churn ({performed} steps)"
    );
    let stats = svc.stats_snapshot();
    assert!(
        stats.splits >= 1 && stats.merges >= 1,
        "both transition kinds occurred"
    );
    // Synopsis bookkeeping survives the churn: every shard's engine —
    // whichever mix of add/split/merge/rebuild produced it — carries a
    // routing synopsis (this soak has no NaN data), and a narrow
    // high-threshold query still answers identically to the reference
    // through whatever pruning those synopses now prove.
    for s in 0..svc.n_shards() {
        assert!(
            svc.shard_engine(s).routing_synopsis().is_some(),
            "shard {s} lost its routing synopsis across transitions"
        );
    }
    let narrow = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(3.0, 5.0),
        0.9,
    ));
    assert_eq!(
        svc.query(&narrow),
        reference(&reference_engine, &narrow),
        "post-churn selective query must match the unsharded reference"
    );
}

/// A sharded engine over a workload-crate repository mix, round-robin by
/// global id, with the routing tiers switched explicitly — the build the
/// selective-stream equivalence pins below share.
fn sharded_from_spec(
    spec: &dds_workload::RepoSpec,
    k: usize,
    ptile: &PtileBuildParams,
    route: bool,
    synopsis: bool,
) -> ShardedEngine {
    let mut svc = ShardedEngine::new(&[1], ptile.clone(), PrefBuildParams::exact_centralized())
        .with_routing(route)
        .with_synopsis_routing(synopsis);
    for shard in spec.shards(k) {
        svc.add_shard_opts(
            &Repository::from_point_sets(shard.sets),
            &shard.global_ids,
            &BuildOptions::serial(),
        );
    }
    svc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Selective streams (narrow interior rectangles, θ lower bound well
    /// above any sampling margin) are the traffic the synopsis tier was
    /// built to prune — and the pruning must be invisible: full routing ≡
    /// box-only ≡ unrouted, bit for bit, for exact **and** φ-anchored
    /// sampled builds, shards {2, 3, 8} × threads {1, 4}.
    #[test]
    fn selective_streams_prune_without_changing_answers(salt in 0u64..1000) {
        let n = 12usize;
        let spec = dds_workload::RepoSpec::mixed(n, 60, 1, salt);
        let exprs = dds_workload::RequestStreamSpec::selective(18, salt).exprs(&spec);
        let params = [
            PtileBuildParams::exact_centralized(),
            PtileBuildParams::default().with_eps(0.4).with_phi_datasets(n),
        ];
        for (p, ptile) in params.iter().enumerate() {
            for k in [2usize, 3, 8] {
                let full = sharded_from_spec(&spec, k, ptile, true, true);
                let box_only = sharded_from_spec(&spec, k, ptile, true, false);
                let unrouted = sharded_from_spec(&spec, k, ptile, false, false);
                let mut scratch = QueryScratch::new();
                for (i, e) in exprs.iter().enumerate() {
                    let want = unrouted.query_with(e, &mut scratch);
                    prop_assert_eq!(
                        full.query_with(e, &mut scratch), want.clone(),
                        "full vs unrouted, params {}, shards {}, expr {}", p, k, i
                    );
                    prop_assert_eq!(
                        box_only.query_with(e, &mut scratch), want,
                        "box-only vs unrouted, params {}, shards {}, expr {}", p, k, i
                    );
                }
                for t in [1usize, 4] {
                    let opts = BuildOptions::with_threads(t);
                    let want = unrouted.query_batch_opts(&exprs, &opts);
                    prop_assert_eq!(
                        full.query_batch_opts(&exprs, &opts), want.clone(),
                        "full batch, params {}, shards {}, threads {}", p, k, t
                    );
                    prop_assert_eq!(
                        box_only.query_batch_opts(&exprs, &opts), want,
                        "box-only batch, params {}, shards {}, threads {}", p, k, t
                    );
                }
                prop_assert_eq!(unrouted.shards_routed_past(), 0);
                prop_assert_eq!(unrouted.shards_routed_by_synopsis(), 0);
                prop_assert_eq!(box_only.shards_routed_by_synopsis(), 0);
            }
        }
    }
}

/// The synopsis tier really engages on selective traffic (the proptest
/// above only proves it is answer-invisible): at a realistic round-robin
/// flavour mix every shard's bounding box overlaps the narrow interior
/// windows, so the box tier prunes nothing while the mass bound prunes
/// most scatter units.
#[test]
fn selective_streams_engage_the_synopsis_tier() {
    let n = 12usize;
    let spec = dds_workload::RepoSpec::mixed(n, 60, 1, 0xE18);
    let exprs = dds_workload::RequestStreamSpec::selective(18, 0xE18).exprs(&spec);
    let ptile = PtileBuildParams::exact_centralized();
    let svc = sharded_from_spec(&spec, 8, &ptile, true, true);
    let _ = svc.query_batch_opts(&exprs, &BuildOptions::serial());
    assert!(
        svc.shards_routed_by_synopsis() > 0,
        "narrow interior windows must trip the mass bound"
    );
    assert!(
        svc.shards_routed_by_synopsis() > svc.shards_routed_past(),
        "the box tier cannot see interior gaps ({} box vs {} synopsis)",
        svc.shards_routed_past(),
        svc.shards_routed_by_synopsis()
    );
}

/// The cross-call cache respects its capacity bound under a workload with
/// far more distinct predicates than slots — and the bounded cache never
/// changes answers (evicted masks recompute identically).
#[test]
fn mask_cache_stays_within_capacity_bound() {
    let sets: Vec<Vec<f64>> = (0..6)
        .map(|i| (0..8).map(|j| (i * 7 + j * 3) as f64 - 15.0).collect())
        .collect();
    let (ptile, pref) = build_params();
    // Routing off: this test counts every (expression, shard) lookup
    // against the capacity bound, so no scatter unit may be skipped.
    let mut svc = ShardedEngine::new(&[1], ptile, pref)
        .with_cache_capacity(4)
        .with_routing(false);
    for s in 0..2 {
        let members: Vec<usize> = (s..sets.len()).step_by(2).collect();
        svc.add_shard(
            &Repository::new(members.iter().map(|&i| dataset_1d(i, &sets[i])).collect()),
            &members.iter().map(|&i| i as GlobalId).collect::<Vec<_>>(),
        );
    }
    let reference_engine = unsharded(&sets);
    // 30 distinct percentile predicates stream through a 4-slot cache.
    let exprs: Vec<LogicalExpr> = (0..30)
        .map(|i| {
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::interval(-20.0 + i as f64, -10.0 + 2.0 * i as f64),
                0.2,
            ))
        })
        .collect();
    for round in 0..3 {
        let got = svc.query_batch_opts(&exprs, &BuildOptions::with_threads(2));
        let expected: Vec<_> = exprs
            .iter()
            .map(|e| reference(&reference_engine, e))
            .collect();
        assert_eq!(got, expected, "round {round}");
    }
    for s in 0..svc.n_shards() {
        let cache = svc.shard_engine(s).mask_cache();
        assert_eq!(cache.capacity(), 4);
        assert!(
            cache.len() <= cache.capacity(),
            "shard {s}: the bound holds after heavy eviction churn"
        );
    }
    let (hits, misses) = svc.cache_stats();
    assert!(misses >= 30 * 2, "evictions force recomputation");
    assert!(hits + misses == 3 * 30 * 2, "every lookup is counted");
}
