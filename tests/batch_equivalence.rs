//! Batch-query equivalence layer: the parallel batch APIs
//! (`MixedQueryEngine::query_batch`, `PtileMultiIndex::query_expr_batch`,
//! `PrefIndex::query_batch`, `DynamicPtileIndex::insert_batch`) must be
//! **bit-identical** to sequential one-at-a-time execution for every thread
//! count — same answers, same order, same errors. This is the contract that
//! lets `query_batch` default to all available cores, exactly as the
//! build-side `tests/parallel_equivalence.rs` does for construction.
//!
//! Also pins the `&self` refactor at the type level: a shared `Arc<engine>`
//! is queried from plain `std::thread` workers with no locks.

mod common;

use common::sorted;
use dds_core::framework::Repository;
use dds_core::ptile::DynamicPtileIndex;
use dds_core::scratch::QueryScratch;
use distribution_aware_search::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The thread counts the batch-equivalence contract is pinned against.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn synopses_1d(sets: &[Vec<f64>]) -> Vec<dds_synopsis::ExactSynopsis> {
    sets.iter()
        .map(|xs| dds_synopsis::ExactSynopsis::new(xs.iter().map(|&x| Point::one(x)).collect()))
        .collect()
}

/// Generated case: 1-d datasets plus query-shape scalars.
type BatchCase = (Vec<Vec<f64>>, Vec<(f64, f64, f64, f64)>);

/// Strategy: a small integer-grid repository and a batch of query shapes
/// `(lo, width, a, b-width)` from which expressions are derived. The batch
/// deliberately repeats shapes (modulo rounding) so the shared mask cache
/// actually dedups.
fn repo_and_batch() -> impl Strategy<Value = BatchCase> {
    (
        prop::collection::vec(
            prop::collection::vec((-20i32..20).prop_map(|x| x as f64), 1..10),
            1..7,
        ),
        prop::collection::vec(
            ((-25i32..25), (0i32..15), (0u32..=100), (0u32..=60)).prop_map(|(lo, w, a, bw)| {
                (lo as f64, w as f64, a as f64 / 100.0, bw as f64 / 100.0)
            }),
            1..12,
        ),
    )
}

/// A mixed expression (percentile + top-k literals) from one query shape.
fn mixed_expr(lo: f64, w: f64, a: f64, bw: f64) -> LogicalExpr {
    let rect = Rect::interval(lo, lo + w);
    LogicalExpr::Or(vec![
        LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile(
                rect.clone(),
                Interval::new(a, (a + bw).min(1.0)),
            )),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, lo + w * a)),
        ]),
        LogicalExpr::Pred(Predicate::percentile_at_least(rect, a)),
    ])
}

/// A percentile-only expression (for the multi-predicate structure).
fn ptile_expr(lo: f64, w: f64, a: f64, bw: f64) -> LogicalExpr {
    let rect = Rect::interval(lo, lo + w);
    let wide = Rect::interval(lo - 3.0, lo + w + 3.0);
    LogicalExpr::Or(vec![
        LogicalExpr::And(vec![
            LogicalExpr::Pred(Predicate::percentile(
                rect,
                Interval::new(a, (a + bw).min(1.0)),
            )),
            LogicalExpr::Pred(Predicate::percentile_at_least(wide.clone(), a / 2.0)),
        ]),
        LogicalExpr::Pred(Predicate::percentile_at_least(wide, (a + bw).min(1.0))),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `MixedQueryEngine::query_batch` ≡ sequential `query`, and scratch
    /// reuse ≡ fresh scratch, for every thread count.
    #[test]
    fn engine_batch_matches_sequential((sets, shapes) in repo_and_batch()) {
        let repo = Repository::new(
            sets.iter()
                .enumerate()
                .map(|(i, xs)| {
                    Dataset::from_rows(format!("d{i}"), xs.iter().map(|&x| vec![x]).collect())
                })
                .collect(),
        );
        let engine = MixedQueryEngine::build_opts(
            &repo,
            &[1],
            PtileBuildParams::exact_centralized(),
            PrefBuildParams::exact_centralized(),
            &BuildOptions::serial(),
        );
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .map(|&(lo, w, a, bw)| mixed_expr(lo, w, a, bw))
            .collect();
        let sequential: Vec<_> = exprs.iter().map(|e| engine.query(e)).collect();
        // Scratch reuse across a query loop changes nothing.
        let mut scratch = QueryScratch::new();
        let reused: Vec<_> = exprs.iter().map(|e| engine.query_with(e, &mut scratch)).collect();
        prop_assert_eq!(&reused, &sequential);
        for t in THREADS {
            let batch = engine.query_batch_opts(&exprs, &BuildOptions::with_threads(t));
            prop_assert_eq!(&batch, &sequential, "threads = {}", t);
        }
    }

    /// `PtileMultiIndex::query_expr_batch` ≡ sequential `query_expr`.
    #[test]
    fn multi_index_batch_matches_sequential((sets, shapes) in repo_and_batch()) {
        let syns = synopses_1d(&sets);
        let idx = PtileMultiIndex::build(&syns, 2, PtileBuildParams::exact_centralized());
        let exprs: Vec<LogicalExpr> = shapes
            .iter()
            .map(|&(lo, w, a, bw)| ptile_expr(lo, w, a, bw))
            .collect();
        let sequential: Vec<_> = exprs.iter().map(|e| idx.query_expr(e)).collect();
        for t in THREADS {
            let batch = idx.query_expr_batch_opts(&exprs, &BuildOptions::with_threads(t));
            prop_assert_eq!(&batch, &sequential, "threads = {}", t);
        }
    }
}

#[test]
fn pref_batch_matches_sequential() {
    let repo = common::ball_repo(40, 60, 2, 0xBA7C);
    let syns = repo.exact_synopses();
    let idx = PrefIndex::build(&syns, 2, PrefBuildParams::exact_centralized());
    let queries: Vec<(Vec<f64>, f64)> = (0..25)
        .map(|i| {
            let angle = i as f64 * 0.251;
            (vec![angle.cos(), angle.sin()], -0.9 + 0.07 * i as f64)
        })
        .collect();
    let sequential: Vec<Vec<usize>> = queries.iter().map(|(u, a)| idx.query(u, *a)).collect();
    for t in THREADS {
        assert_eq!(
            idx.query_batch_opts(&queries, &BuildOptions::with_threads(t)),
            sequential,
            "threads = {t}"
        );
    }
}

/// Degenerate empty clauses (`And([])`, `Or([])`) are handled, not
/// panicked on — in one worker of a batch they would otherwise take the
/// whole batch down via pool panic propagation.
#[test]
fn empty_clauses_are_benign_in_sequential_and_batch() {
    let sets: Vec<Vec<f64>> = vec![vec![1.0, 7.0, 9.0], vec![2.0, 4.0, 6.0, 10.0]];
    let syns = synopses_1d(&sets);
    let idx = PtileMultiIndex::build(&syns, 2, PtileBuildParams::exact_centralized());
    let empty_and = LogicalExpr::And(vec![]);
    let empty_or = LogicalExpr::Or(vec![]);
    let real = ptile_expr(3.0, 5.0, 0.2, 0.8);
    assert_eq!(idx.query_expr(&empty_and), Ok(vec![]));
    assert_eq!(idx.query_expr(&empty_or), Ok(vec![]));
    let exprs = vec![empty_and.clone(), real.clone(), empty_or.clone()];
    let sequential: Vec<_> = exprs.iter().map(|e| idx.query_expr(e)).collect();
    for t in THREADS {
        assert_eq!(
            idx.query_expr_batch_opts(&exprs, &BuildOptions::with_threads(t)),
            sequential,
            "threads = {t}"
        );
    }
    // The mixed engine agrees (it skips empty clauses the same way).
    let repo = Repository::new(vec![
        Dataset::from_rows("a", vec![vec![1.0], vec![7.0]]),
        Dataset::from_rows("b", vec![vec![2.0], vec![4.0]]),
    ]);
    let engine = MixedQueryEngine::build_opts(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
        &BuildOptions::serial(),
    );
    assert_eq!(engine.query(&empty_and), Ok(vec![]));
    let batch = engine.query_batch_opts(
        &[empty_and, mixed_expr(0.0, 8.0, 0.2, 0.5), empty_or],
        &BuildOptions::with_threads(3),
    );
    assert!(batch.iter().all(Result::is_ok));
}

/// The mask cache makes `index_queries` advance by the number of
/// *distinct uncached* predicates in a batch, at every thread count — and
/// since the cache now **survives across `query_batch` calls**, only the
/// first batch computes anything; repeats are pure cache hits.
#[test]
fn batch_counts_each_distinct_predicate_once() {
    let repo = common::mixed_repo(10, 40, 1, 0xC0DE);
    let engine = MixedQueryEngine::build_opts(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
        &BuildOptions::serial(),
    );
    // 12 expressions cycling over 3 distinct shapes; each shape holds 3
    // distinct predicates (And-pair + Or-literal).
    let exprs: Vec<LogicalExpr> = (0..12)
        .map(|i| mixed_expr(10.0 * (i % 3) as f64, 8.0, 0.25, 0.5))
        .collect();
    for (round, t) in THREADS.into_iter().enumerate() {
        let before = engine.index_queries();
        let _ = engine.query_batch_opts(&exprs, &BuildOptions::with_threads(t));
        let expected = if round == 0 { 9 } else { 0 };
        assert_eq!(
            engine.index_queries() - before,
            expected,
            "3 shapes x 3 distinct predicates, cached across calls, threads = {t}"
        );
    }
    // 36 lookups per batch (12 expressions x 3 distinct predicates after
    // per-call memoization); the first batch's 9 are misses, everything
    // after is a hit, deterministically.
    assert_eq!(engine.mask_cache().misses(), 9);
    assert_eq!(engine.mask_cache().hits(), (THREADS.len() as u64) * 36 - 9);
    // Invalidation restores the cold-start behaviour without rebuilding.
    engine.mask_cache().invalidate();
    let before = engine.index_queries();
    let _ = engine.query_batch_opts(&exprs, &BuildOptions::serial());
    assert_eq!(
        engine.index_queries() - before,
        9,
        "stale entries recompute"
    );
}

/// Batch errors surface per expression, in input order, exactly as the
/// sequential loop produces them.
#[test]
fn engine_batch_preserves_per_expression_errors() {
    let repo = common::mixed_repo(12, 40, 1, 0xE44);
    let engine = MixedQueryEngine::build_opts(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
        &BuildOptions::serial(),
    );
    let good = LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::interval(0.0, 50.0),
        0.1,
    ));
    let bad = LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 9, 0.0));
    let exprs = vec![good.clone(), bad.clone(), good, bad];
    let sequential: Vec<_> = exprs.iter().map(|e| engine.query(e)).collect();
    assert!(sequential[1].is_err() && sequential[3].is_err());
    for t in THREADS {
        assert_eq!(
            engine.query_batch_opts(&exprs, &BuildOptions::with_threads(t)),
            sequential,
            "threads = {t}"
        );
    }
}

/// Compile-time-and-runtime proof of the `&self` refactor: one engine
/// shared behind an `Arc` serves concurrent `std::thread` readers with no
/// locks, all agreeing with the single-threaded answers.
#[test]
fn engine_is_shareable_across_plain_threads() {
    let repo = common::mixed_repo(30, 80, 1, 0xA3C);
    let engine = Arc::new(MixedQueryEngine::build_opts(
        &repo,
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized(),
        &BuildOptions::serial(),
    ));
    let exprs: Vec<LogicalExpr> = (0..12)
        .map(|i| mixed_expr(-10.0 + 2.0 * i as f64, 15.0, 0.05 * i as f64, 0.3))
        .collect();
    let expected: Vec<_> = exprs.iter().map(|e| engine.query(e)).collect();
    let mut joined: Vec<(usize, Vec<Result<Vec<usize>, _>>)> = std::thread::scope(|s| {
        (0..4)
            .map(|worker| {
                let engine = Arc::clone(&engine);
                let exprs = &exprs;
                s.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    let answers = exprs
                        .iter()
                        .map(|e| engine.query_with(e, &mut scratch))
                        .collect();
                    (worker, answers)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    joined.sort_by_key(|(w, _)| *w);
    for (worker, answers) in joined {
        assert_eq!(answers, expected, "worker {worker}");
    }
}

/// `DynamicPtileIndex::insert_batch` ≡ serial `insert_synopsis` loop:
/// same handles, same quoted errors, same answers — for every thread count
/// (per-handle RNG streams make the payloads order-independent).
#[test]
fn dynamic_insert_batch_matches_serial_inserts() {
    let wl = common::mixed_repo(30, 900, 1, 0xD15);
    let syns = wl.exact_synopses();
    let params = PtileBuildParams::default().with_rect_budget(200);

    let mut serial = DynamicPtileIndex::new(1, params.clone());
    let serial_handles: Vec<_> = syns.iter().map(|s| serial.insert_synopsis(s)).collect();
    assert!(serial.eps() > 0.0, "sampling path must be engaged");

    let queries: Vec<(Rect, Interval)> = (0..8)
        .map(|q| {
            let lo = q as f64 * 9.0;
            (
                Rect::interval(lo, lo + 15.0),
                Interval::new(0.04 * q as f64, 0.1 + 0.09 * q as f64),
            )
        })
        .collect();

    for t in THREADS {
        let mut batched = DynamicPtileIndex::new(1, params.clone());
        let handles = batched.insert_batch(&syns, &BuildOptions::with_threads(t));
        assert_eq!(handles, serial_handles, "threads = {t}");
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.eps().to_bits(), serial.eps().to_bits());
        for (rect, theta) in &queries {
            assert_eq!(
                sorted(
                    batched
                        .query(rect, *theta)
                        .iter()
                        .map(|&h| h as usize)
                        .collect()
                ),
                sorted(
                    serial
                        .query(rect, *theta)
                        .iter()
                        .map(|&h| h as usize)
                        .collect()
                ),
                "threads = {t}"
            );
        }
    }

    // Mixing the two insertion paths keeps handles and budgets aligned too.
    let mut mixed = DynamicPtileIndex::new(1, params);
    let first = mixed.insert_synopsis(&syns[0]);
    let rest = mixed.insert_batch(&syns[1..], &BuildOptions::with_threads(3));
    assert_eq!(first, serial_handles[0]);
    assert_eq!(rest, serial_handles[1..]);
    assert_eq!(mixed.eps().to_bits(), serial.eps().to_bits());
}
