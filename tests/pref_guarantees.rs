//! Integration tests for the Pref indexes (Theorems 5.4 and D.4):
//! centralized guarantees on unit-ball repositories, against the exact
//! linear scan.

mod common;

use common::{ball_repo, point_sets, sorted};
use dds_core::baseline::LinearScanPref;
use dds_core::guarantee::check_pref;
use dds_core::pref::{DynamicPrefIndex, PrefBuildParams, PrefIndex, PrefMultiIndex};
use dds_workload::queries;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pref_index_guarantees_d2() {
    let repo = ball_repo(60, 400, 2, 201);
    let sets = point_sets(&repo);
    for k in [1usize, 10] {
        let idx = PrefIndex::build(
            &repo.exact_synopses(),
            k,
            PrefBuildParams::exact_centralized(),
        );
        let slack = idx.slack();
        let mut rng = StdRng::seed_from_u64(202 + k as u64);
        for q in 0..30 {
            let v = queries::random_unit_vector(&mut rng, 2);
            let a = queries::threshold_with_selectivity(&sets, &v, k, 0.25);
            let hits = idx.query(&v, a);
            let check = check_pref(&sets, &v, k, a, &hits, slack);
            assert!(
                check.missed.is_empty(),
                "k={k} query {q}: missed {:?}",
                check.missed
            );
            assert!(
                check.out_of_band.is_empty(),
                "k={k} query {q}: band violated {:?}",
                check.out_of_band
            );
        }
    }
}

#[test]
fn pref_index_guarantees_d3() {
    let repo = ball_repo(40, 300, 3, 211);
    let sets = point_sets(&repo);
    let k = 3;
    let params = PrefBuildParams::exact_centralized().with_eps(0.15);
    let idx = PrefIndex::build(&repo.exact_synopses(), k, params);
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(212);
    for q in 0..20 {
        let v = queries::random_unit_vector(&mut rng, 3);
        let a = queries::threshold_with_selectivity(&sets, &v, k, 0.25);
        let hits = idx.query(&v, a);
        let check = check_pref(&sets, &v, k, a, &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

#[test]
fn finer_nets_report_fewer_extras() {
    let repo = ball_repo(80, 300, 2, 221);
    let sets = point_sets(&repo);
    let k = 2;
    let coarse = PrefIndex::build(
        &repo.exact_synopses(),
        k,
        PrefBuildParams::exact_centralized().with_eps(0.4),
    );
    let fine = PrefIndex::build(
        &repo.exact_synopses(),
        k,
        PrefBuildParams::exact_centralized().with_eps(0.02),
    );
    let mut rng = StdRng::seed_from_u64(222);
    let mut extra_coarse = 0usize;
    let mut extra_fine = 0usize;
    for _ in 0..30 {
        let v = queries::random_unit_vector(&mut rng, 2);
        let a = queries::threshold_with_selectivity(&sets, &v, k, 0.3);
        let exact = sets
            .iter()
            .filter(|p| queries::exact_kth_score(p, &v, k) >= a)
            .count();
        extra_coarse += coarse.query(&v, a).len().saturating_sub(exact);
        extra_fine += fine.query(&v, a).len().saturating_sub(exact);
    }
    assert!(
        extra_fine <= extra_coarse,
        "finer net must not over-report more (fine {extra_fine} vs coarse {extra_coarse})"
    );
}

#[test]
fn multi_pref_conjunctions() {
    let repo = ball_repo(50, 300, 2, 231);
    let sets = point_sets(&repo);
    let k = 2;
    let idx = PrefMultiIndex::build(
        &repo.exact_synopses(),
        k,
        2,
        PrefBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(232);
    for q in 0..20 {
        let v1 = queries::random_unit_vector(&mut rng, 2);
        let v2 = queries::random_unit_vector(&mut rng, 2);
        let a1 = queries::threshold_with_selectivity(&sets, &v1, k, 0.5);
        let a2 = queries::threshold_with_selectivity(&sets, &v2, k, 0.5);
        let hits = idx.query(&[(v1.clone(), a1), (v2.clone(), a2)]);
        // Recall: exact conjunction qualifiers must be reported.
        for (i, pts) in sets.iter().enumerate() {
            let qualifies = queries::exact_kth_score(pts, &v1, k) >= a1
                && queries::exact_kth_score(pts, &v2, k) >= a2;
            if qualifies {
                assert!(hits.contains(&i), "query {q}: missed {i}");
            }
        }
        // Per-predicate bands.
        for &j in &hits {
            let s1 = queries::exact_kth_score(&sets[j], &v1, k);
            let s2 = queries::exact_kth_score(&sets[j], &v2, k);
            assert!(
                s1 >= a1 - slack - 1e-9 && s2 >= a2 - slack - 1e-9,
                "query {q}: band violated for {j}"
            );
        }
    }
}

#[test]
fn dynamic_pref_tracks_static_answers() {
    let repo = ball_repo(40, 200, 2, 241);
    let sets = point_sets(&repo);
    let k = 1;
    let params = PrefBuildParams::exact_centralized();
    let static_idx = PrefIndex::build(&repo.exact_synopses(), k, params.clone());
    let mut dyn_idx = DynamicPrefIndex::new(2, k, params);
    let mut handles = Vec::new();
    for s in repo.exact_synopses() {
        handles.push(dyn_idx.insert_synopsis(&s));
    }
    let mut rng = StdRng::seed_from_u64(242);
    for _ in 0..20 {
        let v = queries::random_unit_vector(&mut rng, 2);
        let a = queries::threshold_with_selectivity(&sets, &v, k, 0.3);
        let s_hits = sorted(static_idx.query(&v, a));
        let mut d_hits: Vec<usize> = dyn_idx.query(&v, a).iter().map(|&h| h as usize).collect();
        d_hits.sort_unstable();
        assert_eq!(s_hits, d_hits, "dynamic must equal static before churn");
    }
    // Remove half the synopses; the dynamic answers must shrink accordingly.
    for &h in handles.iter().step_by(2) {
        assert!(dyn_idx.remove_synopsis(h));
    }
    let v = queries::random_unit_vector(&mut rng, 2);
    let hits = dyn_idx.query(&v, -1.0);
    assert!(hits.iter().all(|&h| h % 2 == 1), "removed handles reported");
    assert_eq!(hits.len(), 20);
}

#[test]
fn pref_matches_linear_scan_within_band() {
    let repo = ball_repo(50, 250, 2, 251);
    let k = 4;
    let idx = PrefIndex::build(
        &repo.exact_synopses(),
        k,
        PrefBuildParams::exact_centralized(),
    );
    let scan = LinearScanPref::build(&repo);
    let mut rng = StdRng::seed_from_u64(252);
    for _ in 0..20 {
        let v = queries::random_unit_vector(&mut rng, 2);
        let a = 0.2;
        let exact = scan.query(&v, k, a);
        let approx = idx.query(&v, a);
        // exact ⊆ approx; extras within the band.
        for i in &exact {
            assert!(approx.contains(i));
        }
        for j in &approx {
            assert!(scan.score(*j, &v, k) >= a - idx.slack() - 1e-9);
        }
    }
}
