//! Integration tests for logical expressions (Theorem C.8) and the exact
//! 1-d structure (Theorem C.5).

mod common;

use common::{mixed_repo, point_sets, sorted};
use dds_core::framework::{ground_truth, Interval, LogicalExpr, Predicate, Repository};
use dds_core::guarantee::check_ptile_conjunction;
use dds_core::ptile::{ExactCPtile1D, PtileBuildParams, PtileMultiIndex};
use dds_geom::Rect;
use dds_workload::queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn multi_index_conjunction_guarantees() {
    let repo = mixed_repo(30, 300, 1, 301);
    let sets = point_sets(&repo);
    let idx = PtileMultiIndex::build(
        &repo.exact_synopses(),
        2,
        PtileBuildParams::exact_centralized(),
    );
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(302);
    let bbox = Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..20 {
        let r1 = queries::random_rect(&mut rng, &bbox);
        let r2 = queries::random_rect(&mut rng, &bbox);
        let a1: f64 = rng.gen_range(0.05..0.6);
        let a2: f64 = rng.gen_range(0.05..0.6);
        let preds = vec![(r1, Interval::new(a1, 1.0)), (r2, Interval::new(a2, 1.0))];
        let hits = idx.query(&preds);
        let check = check_ptile_conjunction(&sets, &preds, &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

#[test]
fn expression_queries_cover_ground_truth() {
    let repo = mixed_repo(25, 250, 1, 311);
    let idx = PtileMultiIndex::build(
        &repo.exact_synopses(),
        2,
        PtileBuildParams::exact_centralized(),
    );
    let mut rng = StdRng::seed_from_u64(312);
    let bbox = Rect::from_bounds(&[0.0], &[100.0]);
    for _ in 0..12 {
        let r1 = queries::random_rect(&mut rng, &bbox);
        let r2 = queries::random_rect(&mut rng, &bbox);
        let a1: f64 = rng.gen_range(0.1..0.6);
        let a2: f64 = rng.gen_range(0.1..0.6);
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(r1.clone(), a1)),
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(r2.clone(), a2)),
                LogicalExpr::Pred(Predicate::percentile(r1.clone(), Interval::new(0.0, 0.5))),
            ]),
        ]);
        let hits = idx.query_expr(&expr).expect("percentile expression");
        let truth = ground_truth(&repo, &expr);
        for i in truth {
            assert!(hits.contains(&i), "ground-truth index {i} missing");
        }
        // No duplicates in the union.
        let s = sorted(hits.clone());
        let mut d = s.clone();
        d.dedup();
        assert_eq!(s, d);
    }
}

#[test]
fn exact1d_matches_bruteforce_randomized() {
    let repo = mixed_repo(40, 300, 1, 321);
    let mut rng = StdRng::seed_from_u64(322);
    for trial in 0..6 {
        let (a, b) = queries::random_theta(&mut rng, 0.05);
        let theta = Interval::new(a, b);
        let idx = ExactCPtile1D::build(&repo, theta);
        for q in 0..20 {
            let lo: f64 = rng.gen_range(0.0..90.0);
            let hi: f64 = lo + rng.gen_range(0.0..40.0);
            let got = sorted(idx.query(lo, hi));
            let want: Vec<usize> = repo
                .point_sets()
                .enumerate()
                .filter(|(_, pts)| {
                    let cnt = pts.iter().filter(|p| lo <= p[0] && p[0] <= hi).count();
                    theta.contains(cnt as f64 / pts.len() as f64)
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "trial {trial} query {q} theta=[{a},{b}]");
        }
    }
}

#[test]
fn exact1d_one_sided_and_degenerate_thetas() {
    let repo = mixed_repo(20, 150, 1, 331);
    // One-sided: θ = [0.4, 1].
    let idx = ExactCPtile1D::build(&repo, Interval::new(0.4, 1.0));
    let got = sorted(idx.query(0.0, 100.0));
    assert_eq!(got.len(), 20, "full-range query matches everything at 100%");
    // Degenerate: θ = [1, 1] — only datasets fully inside R.
    let idx = ExactCPtile1D::build(&repo, Interval::new(1.0, 1.0));
    let got = idx.query(0.0, 100.0);
    assert_eq!(got.len(), 20);
    let none = idx.query(0.0, 0.000001);
    assert!(none.is_empty());
    // θ = [0, 0] — only datasets with nothing in R.
    let idx = ExactCPtile1D::build(&repo, Interval::new(0.0, 0.0));
    let got = idx.query(200.0, 300.0);
    assert_eq!(got.len(), 20, "nobody has mass beyond the domain");
}

#[test]
fn exact1d_on_tiny_explicit_repo() {
    // Fully hand-checkable instance.
    let repo = Repository::new(vec![
        dds_core::framework::Dataset::from_rows("x", vec![vec![1.0], vec![2.0], vec![3.0]]),
        dds_core::framework::Dataset::from_rows("y", vec![vec![2.0], vec![2.5]]),
    ]);
    let idx = ExactCPtile1D::build(&repo, Interval::new(0.5, 1.0));
    // R = [2, 3]: x has 2/3, y has 2/2 → both.
    assert_eq!(sorted(idx.query(2.0, 3.0)), vec![0, 1]);
    // R = [2.4, 3.5]: x has 1/3 (<0.5), y has 1/2 → y only.
    assert_eq!(idx.query(2.4, 3.5), vec![1]);
    // R = [4, 5]: nobody.
    assert!(idx.query(4.0, 5.0).is_empty());
}
