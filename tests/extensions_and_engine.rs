//! Integration tests for the Section-6 extensions (nearest-neighbor and
//! diversity dataset search) and the mixed-expression engine, at repository
//! scale.

mod common;

use common::{mixed_repo, point_sets};
use dds_core::engine::MixedQueryEngine;
use dds_core::extensions::{DiversityDatasetIndex, NnDatasetIndex};
use dds_core::framework::{ground_truth, LogicalExpr, Predicate};
use dds_core::pref::PrefBuildParams;
use dds_core::ptile::PtileBuildParams;
use dds_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn nn_dataset_search_at_scale() {
    let repo = mixed_repo(60, 400, 2, 601);
    let sets = point_sets(&repo);
    let idx = NnDatasetIndex::build(&sets, 32);
    let mut rng = StdRng::seed_from_u64(602);
    for _ in 0..25 {
        let q = vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
        let tau = rng.gen_range(0.5..15.0);
        let hits = idx.query(&q, tau);
        let qp = Point::new(q.clone());
        for (j, pts) in sets.iter().enumerate() {
            let d = pts
                .iter()
                .map(|p| p.dist(&qp))
                .fold(f64::INFINITY, f64::min);
            if d <= tau {
                assert!(hits.contains(&j), "missed dataset {j} at dist {d:.3}");
            }
        }
        for &j in &hits {
            let d = sets[j]
                .iter()
                .map(|p| p.dist(&qp))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= tau + idx.band_for(j) + 1e-9, "band violated for {j}");
        }
    }
}

#[test]
fn diversity_search_recall_at_scale() {
    let repo = mixed_repo(30, 300, 2, 611);
    let sets = point_sets(&repo);
    let idx = DiversityDatasetIndex::build(&sets, 24);
    let mut rng = StdRng::seed_from_u64(612);
    for _ in 0..10 {
        let lo = vec![rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)];
        let hi = vec![
            lo[0] + rng.gen_range(10.0..50.0),
            lo[1] + rng.gen_range(10.0..50.0),
        ];
        let r = Rect::from_bounds(&lo, &hi);
        let tau = rng.gen_range(5.0..60.0);
        let hits = idx.query(&r, tau);
        for (j, pts) in sets.iter().enumerate() {
            let inside: Vec<&Point> = pts.iter().filter(|p| r.contains_point(p)).collect();
            let mut diam: f64 = 0.0;
            for a in 0..inside.len() {
                for b in (a + 1)..inside.len() {
                    diam = diam.max(inside[a].dist(inside[b]));
                }
            }
            if diam >= tau {
                assert!(hits.contains(&j), "missed dataset {j} with diam {diam:.2}");
            }
        }
    }
}

#[test]
fn mixed_engine_covers_ground_truth_at_scale() {
    let repo = mixed_repo(40, 300, 1, 621);
    let engine = MixedQueryEngine::build(
        &repo,
        &[1, 5],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized().with_eps(0.05),
    );
    let mut rng = StdRng::seed_from_u64(622);
    for _ in 0..10 {
        let a = rng.gen_range(0.0..60.0);
        let b = a + rng.gen_range(5.0..40.0);
        let mass_bar: f64 = rng.gen_range(0.2..0.7);
        // Scores in this 1-d repo are raw coordinates; pick a bar from the
        // data range so both branches of the expression are non-trivial.
        let score_bar: f64 = rng.gen_range(20.0..90.0);
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::And(vec![
                LogicalExpr::Pred(Predicate::percentile_at_least(
                    Rect::interval(a, b),
                    mass_bar,
                )),
                LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 5, score_bar)),
            ]),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0], 1, 99.0)),
        ]);
        let hits = engine.query(&expr).expect("all ranks indexed");
        for i in ground_truth(&repo, &expr) {
            assert!(hits.contains(&i), "missed ground-truth dataset {i}");
        }
        // No duplicates.
        let mut d = hits.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), hits.len());
    }
}
