//! Federated-setting integration tests (FPtile / FPref): histogram,
//! mixture and sample synopses with *measured* error δ; the end-to-end
//! ε + 2δ band of Theorems 4.4 / 4.11 / 5.4 must hold against the raw data.

mod common;

use common::{ball_repo, mixed_repo, point_sets};
use dds_core::framework::Interval;
use dds_core::guarantee::{check_pref, check_ptile};
use dds_core::pref::{PrefBuildParams, PrefIndex};
use dds_core::ptile::{PtileBuildParams, PtileRangeIndex, PtileThresholdIndex};
use dds_synopsis::{
    error, EquiDepthHistogram, GaussianMixtureSynopsis, GridHistogram, NetCachePref,
    PercentileSynopsis, UniformSampleSynopsis,
};
use dds_workload::queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measures `max_i Err_{S_{P_i}}` over random rectangle probes.
fn measured_delta<S: PercentileSynopsis>(
    synopses: &[S],
    sets: &[Vec<dds_geom::Point>],
    rng: &mut StdRng,
) -> f64 {
    synopses
        .iter()
        .zip(sets)
        .map(|(s, pts)| error::estimate_percentile_error(s, pts, 60, rng))
        .fold(0.0, f64::max)
}

#[test]
fn grid_histogram_synopses_keep_the_band() {
    let repo = mixed_repo(30, 800, 1, 101);
    let sets = point_sets(&repo);
    let mut rng = StdRng::seed_from_u64(102);
    let synopses: Vec<GridHistogram> = sets
        .iter()
        .map(|pts| GridHistogram::from_points(pts, 48))
        .collect();
    // Measure δ and pad it: the probe is a lower bound on the sup-error.
    let delta = (1.5 * measured_delta(&synopses, &sets, &mut rng)).clamp(0.01, 0.5);
    let params = PtileBuildParams::federated(delta);
    let idx = PtileRangeIndex::build(&synopses, params);
    let slack = idx.slack();
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..30 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.1);
        let hits = idx.query(&r, Interval::new(a, b));
        let check = check_ptile(&sets, &r, Interval::new(a, b), &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: recall violated (missed {:?}, delta {delta:.3})",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated ({:?}, slack {slack:.3})",
            check.out_of_band
        );
    }
}

#[test]
fn equi_depth_histograms_match_fainder_setting() {
    // The Fainder baseline's synopsis family: per-dataset quantile sketches.
    let repo = mixed_repo(30, 600, 1, 111);
    let sets = point_sets(&repo);
    let mut rng = StdRng::seed_from_u64(112);
    let synopses: Vec<EquiDepthHistogram> = sets
        .iter()
        .map(|pts| EquiDepthHistogram::from_points(pts, 64))
        .collect();
    let delta = (1.5 * measured_delta(&synopses, &sets, &mut rng)).clamp(0.01, 0.5);
    let idx = PtileThresholdIndex::build(&synopses, PtileBuildParams::federated(delta));
    let slack = idx.slack();
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..30 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.05..0.8);
        let hits = idx.query(&r, a);
        let check = check_ptile(&sets, &r, Interval::new(a, 1.0), &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

#[test]
fn mixture_synopses_keep_the_band_2d() {
    let repo = mixed_repo(16, 600, 2, 121);
    let sets = point_sets(&repo);
    let mut rng = StdRng::seed_from_u64(122);
    let synopses: Vec<GaussianMixtureSynopsis> = sets
        .iter()
        .map(|pts| GaussianMixtureSynopsis::fit(pts, 4, 8, &mut rng))
        .collect();
    // Mixtures on skewed data can be coarse; measure and pad generously.
    let delta = (1.5 * measured_delta(&synopses, &sets, &mut rng)).clamp(0.02, 0.6);
    let idx = PtileThresholdIndex::build(&synopses, PtileBuildParams::federated(delta));
    let slack = idx.slack();
    let bbox = dds_geom::Rect::from_bounds(&[0.0, 0.0], &[100.0, 100.0]);
    for q in 0..20 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.05..0.8);
        let hits = idx.query(&r, a);
        let check = check_ptile(&sets, &r, Interval::new(a, 1.0), &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

#[test]
fn sample_synopses_advertised_delta_suffices() {
    let repo = mixed_repo(25, 2000, 1, 131);
    let sets = point_sets(&repo);
    let mut rng = StdRng::seed_from_u64(132);
    let synopses: Vec<UniformSampleSynopsis> = sets
        .iter()
        .map(|pts| UniformSampleSynopsis::from_points(pts, 600, 0.001, &mut rng))
        .collect();
    // Here δ comes from the ε-sample theorem, not from measurement.
    let delta = synopses
        .iter()
        .map(|s| s.percentile_delta().unwrap())
        .fold(0.0, f64::max);
    let idx = PtileThresholdIndex::build(&synopses, PtileBuildParams::federated(delta));
    let slack = idx.slack();
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for q in 0..30 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.05..0.8);
        let hits = idx.query(&r, a);
        let check = check_ptile(&sets, &r, Interval::new(a, 1.0), &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

#[test]
fn federated_pref_with_direction_caches() {
    let repo = ball_repo(30, 300, 2, 141);
    let sets = point_sets(&repo);
    let k = 5;
    let synopses: Vec<NetCachePref> = sets
        .iter()
        .map(|pts| NetCachePref::build(pts, 0.05, 32))
        .collect();
    let delta = synopses[0].pref_delta().unwrap();
    let idx = PrefIndex::build(&synopses, k, PrefBuildParams::federated(delta));
    let slack = idx.slack();
    let mut rng = StdRng::seed_from_u64(142);
    for q in 0..30 {
        let v = queries::random_unit_vector(&mut rng, 2);
        let raw: Vec<Vec<dds_geom::Point>> = sets.clone();
        let a = queries::threshold_with_selectivity(&raw, &v, k, 0.3);
        let hits = idx.query(&v, a);
        let check = check_pref(&sets, &v, k, a, &hits, slack);
        assert!(
            check.missed.is_empty(),
            "query {q}: missed {:?}",
            check.missed
        );
        assert!(
            check.out_of_band.is_empty(),
            "query {q}: band violated {:?}",
            check.out_of_band
        );
    }
}

use dds_synopsis::PrefSynopsis;
