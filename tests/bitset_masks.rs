//! Packed-bitset hit masks: word-boundary coverage (63 / 64 / 65 datasets)
//! for the DNF query loops, and the regression pin that predicate dedup in
//! `MixedQueryEngine::query` still issues exactly one index query per
//! distinct predicate after the `Vec<bool>` → `u64`-word switch.

use distribution_aware_search::prelude::*;

/// `n` one-point 2-d datasets: dataset `j` sits at position `j` with quality
/// `j / n`, so any prefix/suffix of indexes is selectable exactly.
fn unit_repo(n: usize) -> Repository {
    Repository::new(
        (0..n)
            .map(|j| Dataset::from_rows(format!("d{j}"), vec![vec![j as f64 / n as f64, j as f64]]))
            .collect(),
    )
}

fn engine(n: usize) -> MixedQueryEngine {
    MixedQueryEngine::build_opts(
        &unit_repo(n),
        &[1],
        PtileBuildParams::exact_centralized(),
        PrefBuildParams::exact_centralized().with_eps(0.02),
        &BuildOptions::serial(),
    )
}

/// Positions `< cut` (i.e. datasets `0..cut`).
fn below(cut: usize) -> LogicalExpr {
    LogicalExpr::Pred(Predicate::percentile_at_least(
        Rect::from_bounds(&[-1.0, -1.0], &[2.0, cut as f64 - 0.5]),
        0.9,
    ))
}

#[test]
fn word_boundary_universes_answer_exactly() {
    for n in [63usize, 64, 65] {
        let e = engine(n);
        // Everything below n-1 AND quality >= 0.5 — an AND straddling the
        // last partial word.
        let expr = LogicalExpr::And(vec![
            below(n - 1),
            LogicalExpr::Pred(Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.5)),
        ]);
        let mut hits = e.query(&expr).unwrap();
        hits.sort_unstable();
        let slack_pad = (e.pref_slack(1).unwrap() / (1.0 / n as f64)).ceil() as usize + 1;
        // Exact answer: quality j/n >= 0.5 and j <= n-2.
        let exact: Vec<usize> = (0..n).filter(|&j| 2 * j >= n && j < n - 1).collect();
        for j in &exact {
            assert!(hits.contains(j), "n={n}: missed dataset {j}");
        }
        // Band: nothing further than the Pref slack below the bar, and the
        // percentile predicate (exact here) is never violated.
        let min_allowed = n / 2 - slack_pad.min(n / 2);
        assert!(
            hits.iter().all(|&j| j >= min_allowed && j < n - 1),
            "n={n}: out-of-band hit in {hits:?}"
        );

        // OR over the boundary datasets: indexes 62, 63, 64 are the last
        // bits of word 0 and the first of word 1.
        let last = n - 1;
        let expr = LogicalExpr::Or(vec![
            LogicalExpr::Pred(Predicate::percentile_at_least(
                Rect::from_bounds(&[-1.0, last as f64 - 0.5], &[2.0, last as f64 + 0.5]),
                0.9,
            )),
            below(1),
        ]);
        let mut hits = e.query(&expr).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, last], "n={n}");
    }
}

#[test]
fn multi_index_clause_accumulator_at_word_boundaries() {
    for n in [63usize, 64, 65] {
        let syns = unit_repo(n).exact_synopses();
        let idx = PtileMultiIndex::build(&syns, 2, PtileBuildParams::exact_centralized());
        // Degenerate band (lo = 0) forces the bitset intersection fallback.
        let hits = idx.query(&[
            (
                Rect::from_bounds(&[-1.0, -1.0], &[2.0, n as f64 - 1.5]),
                Interval::new(0.0, 1.0),
            ),
            (
                Rect::from_bounds(&[-1.0, 0.5], &[2.0, n as f64]),
                Interval::new(0.9, 1.0),
            ),
        ]);
        // Second predicate selects 1..n, first is satisfied by everyone
        // (mass 1 inside for 0..n-1, mass 0 allowed by the zero band).
        assert_eq!(hits, (1..n).collect::<Vec<_>>(), "n={n}");

        // DNF union across the word boundary via query_expr's bitset: one
        // clause per dataset in 56..n, so the set bits straddle words 0/1.
        let expr = LogicalExpr::Or(
            (56..n)
                .map(|j| {
                    LogicalExpr::Pred(Predicate::percentile_at_least(
                        Rect::from_bounds(&[-1.0, j as f64 - 0.5], &[2.0, j as f64 + 0.5]),
                        0.9,
                    ))
                })
                .collect(),
        );
        let mut hits = idx.query_expr(&expr).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, (56..n).collect::<Vec<_>>(), "n={n}");
    }
}

#[test]
fn dnf_dedup_still_issues_one_query_per_distinct_predicate() {
    // 65 datasets: the memoized masks span two words. `(a ∧ s) ∨ (b ∧ s)`
    // mentions 4 literals over 3 distinct predicates.
    let e = engine(65);
    let score = Predicate::topk_at_least(vec![1.0, 0.0], 1, 0.5);
    let a = Predicate::percentile_at_least(Rect::from_bounds(&[-1.0, -1.0], &[2.0, 31.5]), 0.9);
    let b = Predicate::percentile_at_least(Rect::from_bounds(&[-1.0, 31.5], &[2.0, 65.0]), 0.9);
    let expr = LogicalExpr::Or(vec![
        LogicalExpr::And(vec![
            LogicalExpr::Pred(a.clone()),
            LogicalExpr::Pred(score.clone()),
        ]),
        LogicalExpr::And(vec![
            LogicalExpr::Pred(b.clone()),
            LogicalExpr::Pred(score.clone()),
        ]),
    ]);
    assert_eq!(e.index_queries(), 0);
    let hits = e.query(&expr).unwrap();
    assert_eq!(
        e.index_queries(),
        3,
        "4 DNF literals over 3 distinct predicates must hit the indexes 3 times"
    );
    // No dataset reported twice across clauses.
    let mut dedup = hits.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), hits.len());
    // Re-querying keeps counting (memo is per call).
    let _ = e.query(&expr).unwrap();
    assert_eq!(e.index_queries(), 6);
}

#[test]
fn bitset_primitive_word_boundaries() {
    for n in [63usize, 64, 65] {
        let mut s = BitSet::new(n);
        assert_eq!(s.len(), n);
        for j in 0..n {
            assert!(s.insert(j));
        }
        assert_eq!(s.count_ones(), n);
        assert_eq!(
            s.iter_ones().collect::<Vec<_>>(),
            (0..n).collect::<Vec<_>>()
        );
        let mut evens = BitSet::new(n);
        for j in (0..n).step_by(2) {
            evens.insert(j);
        }
        s.and_assign(&evens);
        assert_eq!(
            s.iter_ones().collect::<Vec<_>>(),
            (0..n).step_by(2).collect::<Vec<_>>()
        );
        s.or_assign(&evens);
        assert_eq!(s.count_ones(), n.div_ceil(2));
        assert!(!s.contains(n), "out of universe");
    }
}
