//! End-to-end validation of the Section 3 lower-bound constructions:
//! uniform set intersection ↔ CPtile (Appendix B.1 / Figure 4) and
//! halfspace reporting ↔ CPref (Appendix B.2).

mod common;

use dds_core::lowerbound::{HalfspaceReporter, SetIntersectionCPtile};
use dds_workload::datasets;
use dds_workload::UniformSetInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn set_intersection_reduction_on_generated_instances() {
    for (g, universe, replication, seed) in
        [(6usize, 40u64, 3usize, 1u64), (10, 80, 4, 2), (4, 25, 2, 3)]
    {
        let inst = UniformSetInstance::generate(g, universe, replication, seed);
        assert!(inst.is_uniform());
        let red = SetIntersectionCPtile::build(&inst.sets, inst.universe);
        for i in 0..g {
            for j in 0..g {
                assert_eq!(
                    red.intersect(i, j),
                    inst.intersect(i, j),
                    "instance (g={g}, u={universe}, r={replication}) sets {i}∩{j}"
                );
            }
        }
    }
}

#[test]
fn set_intersection_disjoint_pairs_report_empty() {
    // Hand-built uniform instance with guaranteed-disjoint pairs.
    let sets = vec![vec![0u64, 1], vec![2u64, 3], vec![0u64, 2], vec![1u64, 3]];
    let red = SetIntersectionCPtile::build(&sets, 4);
    assert!(red.intersect(0, 1).is_empty());
    assert!(red.intersect(2, 3).is_empty());
    assert_eq!(red.intersect(0, 2), vec![0]);
    assert_eq!(red.intersect(1, 3), vec![3]);
    assert_eq!(red.intersect(1, 1), vec![2, 3]);
}

#[test]
fn halfspace_reduction_in_r2_and_r3() {
    let mut rng = StdRng::seed_from_u64(7);
    for d in [2usize, 3] {
        let pts = datasets::unit_ball(&mut rng, 120, d);
        let rep = HalfspaceReporter::build(pts.clone(), 0.05);
        let dirs = match d {
            2 => vec![vec![1.0, 0.0], vec![0.6, -0.8]],
            _ => vec![vec![1.0, 0.0, 0.0], vec![0.57735, 0.57735, 0.57735]],
        };
        for w in dirs {
            for c in [-0.4, 0.0, 0.3, 0.7] {
                let got = rep.report(&w, c);
                let want: Vec<usize> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.dot(&w) >= c)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "d={d} w={w:?} c={c}");
                // The raw CPref candidates form a superset within the band.
                let cands = rep.candidates(&w, c);
                for i in &want {
                    assert!(cands.contains(i));
                }
                for &i in &cands {
                    assert!(pts[i].dot(&w) >= c - rep.band() - 1e-9);
                }
            }
        }
    }
}
