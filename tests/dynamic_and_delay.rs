//! Integration tests for the dynamic indexes (Remark 1) and the delay
//! instrumentation (Remark 3).

mod common;

use common::{mixed_repo, point_sets, sorted};
use dds_core::delay::DelayRecorder;
use dds_core::framework::Interval;
use dds_core::ptile::{DynamicPtileIndex, PtileBuildParams, PtileRangeIndex, PtileThresholdIndex};
use dds_synopsis::ExactSynopsis;
use dds_workload::queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn dynamic_ptile_tracks_static_rebuild() {
    // Supports small enough for the exact-support shortcut on both sides:
    // with ε = 0 the dynamic and static answers must agree bit-for-bit
    // (with sampling, both are correct but may differ inside the band).
    let repo = mixed_repo(30, 80, 1, 401);
    let synopses = repo.exact_synopses();
    let params = PtileBuildParams::exact_centralized();
    let mut dynamic = DynamicPtileIndex::new(1, params.clone());
    let handles: Vec<u64> = synopses
        .iter()
        .map(|s| dynamic.insert_synopsis(s))
        .collect();
    let mut rng = StdRng::seed_from_u64(402);
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);

    // Full set: dynamic answers equal the static index on the same data.
    let static_idx = PtileRangeIndex::build(&synopses, params.clone());
    for _ in 0..15 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.1);
        let theta = Interval::new(a, b);
        let s = sorted(static_idx.query(&r, theta));
        let d = sorted(
            dynamic
                .query(&r, theta)
                .into_iter()
                .map(|h| h as usize)
                .collect(),
        );
        assert_eq!(s, d, "dynamic vs static disagreement");
    }

    // Delete a third, compare against a rebuilt static index.
    let keep: Vec<usize> = (0..30).filter(|i| i % 3 != 0).collect();
    for (i, &h) in handles.iter().enumerate() {
        if i % 3 == 0 {
            assert!(dynamic.remove_synopsis(h));
        }
    }
    let kept_synopses: Vec<ExactSynopsis> = keep.iter().map(|&i| synopses[i].clone()).collect();
    let rebuilt = PtileRangeIndex::build(&kept_synopses, params);
    for _ in 0..15 {
        let r = queries::random_rect(&mut rng, &bbox);
        let (a, b) = queries::random_theta(&mut rng, 0.1);
        let theta = Interval::new(a, b);
        let want: Vec<usize> = sorted(
            rebuilt
                .query(&r, theta)
                .into_iter()
                .map(|j| keep[j]) // map back to original ids = handles
                .collect(),
        );
        let got = sorted(
            dynamic
                .query(&r, theta)
                .into_iter()
                .map(|h| h as usize)
                .collect(),
        );
        assert_eq!(got, want, "after deletions");
    }
}

#[test]
fn delay_is_bounded_per_report() {
    // Remark 3: the gap between consecutive reports stays small even when
    // the output is large. We check the empirical max gap is within a
    // liberal constant of the mean (no pathological stalls), which is the
    // observable consequence of the Õ(1)-delay claim.
    let repo = mixed_repo(120, 150, 1, 411);
    let idx = PtileThresholdIndex::build(
        &repo.exact_synopses(),
        PtileBuildParams::exact_centralized(),
    );
    let r = dds_geom::Rect::interval(0.0, 100.0);
    let mut rec = DelayRecorder::new();
    idx.query_cb(&r, 0.9, &mut |_| rec.tick());
    rec.finish();
    assert!(rec.results() > 50, "expected a large output");
    let mean = rec.mean_gap();
    let max = rec.max_gap();
    assert!(
        max <= mean * 200 + std::time::Duration::from_millis(5),
        "suspicious stall: max {max:?} vs mean {mean:?}"
    );
}

#[test]
fn dynamic_insertion_is_cheap_relative_to_rebuild() {
    // E9 sanity: one insertion must be much cheaper than a full rebuild.
    let repo = mixed_repo(60, 150, 1, 421);
    let synopses = repo.exact_synopses();
    let params = PtileBuildParams::exact_centralized();
    let mut dynamic = DynamicPtileIndex::new(1, params.clone());
    for s in &synopses {
        dynamic.insert_synopsis(s);
    }
    let extra = ExactSynopsis::new(
        (0..100)
            .map(|i| dds_geom::Point::one(i as f64))
            .collect::<Vec<_>>(),
    );
    let t0 = std::time::Instant::now();
    dynamic.insert_synopsis(&extra);
    let insert_time = t0.elapsed();

    let mut all = synopses.clone();
    all.push(extra);
    let t1 = std::time::Instant::now();
    let _rebuilt = PtileRangeIndex::build(&all, params);
    let rebuild_time = t1.elapsed();
    assert!(
        insert_time < rebuild_time,
        "insertion ({insert_time:?}) should beat a rebuild ({rebuild_time:?})"
    );
}

#[test]
fn unknown_delta_remark_semantics() {
    // Remark 2: with unknown per-dataset δ_i, reported sets still satisfy
    // per-dataset bands. We emulate it by building with δ = max δ_i and
    // checking the per-dataset band with each dataset's own δ_i + global ε.
    let repo = mixed_repo(20, 500, 1, 431);
    let sets = point_sets(&repo);
    let mut rng = StdRng::seed_from_u64(432);
    let synopses: Vec<dds_synopsis::GridHistogram> = sets
        .iter()
        .map(|pts| {
            let bins = rng.gen_range(8..64);
            dds_synopsis::GridHistogram::from_points(pts, bins)
        })
        .collect();
    let deltas: Vec<f64> = synopses
        .iter()
        .zip(&sets)
        .map(|(s, pts)| 1.5 * dds_synopsis::error::estimate_percentile_error(s, pts, 60, &mut rng))
        .collect();
    let delta_max = deltas
        .iter()
        .fold(0.0f64, |a, &b| a.max(b))
        .clamp(0.01, 0.6);
    let idx = PtileThresholdIndex::build(&synopses, PtileBuildParams::federated(delta_max));
    let bbox = dds_geom::Rect::from_bounds(&[0.0], &[100.0]);
    for _ in 0..15 {
        let r = queries::random_rect(&mut rng, &bbox);
        let a: f64 = rng.gen_range(0.1..0.8);
        let hits = idx.query(&r, a);
        // Global-budget band must hold for every report.
        for &j in &hits {
            let mass = r.mass(&sets[j]);
            assert!(
                mass >= a - idx.slack() - 1e-9,
                "dataset {j} outside even the global band"
            );
        }
    }
}
